// Sensor network scenario (the paper's §1/§5 motivation): 48 temperature
// sensors with diurnal cycles, local fluctuations and occasional spikes;
// a base station continuously tracks the 5 hottest locations over a
// simulated week and reports the communication bill of four algorithms.
#include <iostream>
#include <memory>
#include <vector>

#include "topkmon.hpp"

int main() {
  using namespace topkmon;

  constexpr std::size_t kSensors = 48;
  constexpr std::size_t kHottest = 5;
  constexpr std::size_t kMinutesPerDay = 1'440;
  constexpr std::size_t kDays = 7;
  constexpr std::uint64_t kSeed = 7;

  // Hand-built streams (instead of the factory): co-located sensors share
  // the diurnal phase up to a few minutes of jitter, while their *bases*
  // differ by location (south wall vs shaded courtyard) — so the hottest-5
  // set is mostly stable and changes only around spikes and slow seasonal
  // crossings. This is the regime the paper's summary highlights.
  auto build_streams = [&] {
    const Rng root(kSeed);
    std::vector<std::unique_ptr<Stream>> streams;
    for (NodeId id = 0; id < kSensors; ++id) {
      SensorParams p;
      p.base = 148.0 + 4.0 * static_cast<double>(id);  // location offset
      p.diurnal_amplitude = 65.0;  // +-6.5 °C day/night swing
      p.diurnal_period = kMinutesPerDay;
      p.phase = static_cast<double>(id % 7) * 4.0;  // minutes of jitter
      p.walk_step = 1;
      p.spike_prob = 0.0003;  // rare local heat events
      p.spike_magnitude = 60;
      auto s = std::make_unique<SensorStream>(p, root.derive(id + 1));
      streams.push_back(std::make_unique<DistinctStream>(std::move(s), id,
                                                          kSensors));
    }
    return StreamSet(std::move(streams));
  };

  std::cout << "sensor network: " << kSensors << " sensors, top-" << kHottest
            << " hottest, " << kDays << " days at 1 obs/min ("
            << kMinutesPerDay * kDays << " steps)\n\n";

  struct Entry {
    const char* label;
    std::unique_ptr<MonitorBase> monitor;
  };
  std::vector<Entry> entries;
  entries.push_back({"Algorithm 1 (filters + rand. protocol)",
                     std::make_unique<TopkFilterMonitor>(kHottest)});
  entries.push_back({"ordered top-k (§5 variant)",
                     std::make_unique<OrderedTopkMonitor>(kHottest)});
  entries.push_back({"recompute each minute (§2.1)",
                     std::make_unique<RecomputeMonitor>(kHottest)});
  entries.push_back({"naive forwarding",
                     std::make_unique<NaiveMonitor>(kHottest)});

  Table table({"algorithm", "total msgs", "msgs/min", "resets",
               "violations"});
  for (auto& e : entries) {
    auto streams = build_streams();
    RunConfig cfg;
    cfg.n = kSensors;
    cfg.k = kHottest;
    cfg.steps = kMinutesPerDay * kDays;
    cfg.seed = kSeed;
    const auto r = run_monitor(*e.monitor, streams, cfg);
    table.add_row({e.label, fmt_count(r.comm.total()),
                   fmt(r.messages_per_step(), 2),
                   fmt_count(r.monitor.filter_resets),
                   fmt_count(r.monitor.violations)});
  }
  table.print(std::cout);

  std::cout << "\nEvery algorithm was validated against the true hottest-"
            << kHottest << " set at every minute.\n"
            << "The filter-based coordinator stays silent while the diurnal "
               "pattern keeps relative order stable and only pays around "
               "crossings and spikes — the regime the paper's summary "
               "highlights for naturally bounded sensor values.\n";
  return 0;
}
