// Network telemetry scenario: 64 edge routers export per-interface byte
// counters with heavy-tailed (Pareto) traffic and flash-crowd bursts; the
// NOC continuously tracks the 8 most loaded routers. Demonstrates
// (a) live use of the monitor API on a Cluster you drive yourself (rather
// than through run_monitor), and (b) per-kind message accounting.
#include <iomanip>
#include <iostream>

#include "topkmon.hpp"

int main() {
  using namespace topkmon;

  constexpr std::size_t kRouters = 64;
  constexpr std::size_t kTop = 8;
  constexpr std::size_t kSteps = 4'000;
  constexpr std::uint64_t kSeed = 99;

  // Heavy-tailed load with regime switches: mix Pareto levels with bursts
  // by alternating two generators per router via the bursty family.
  StreamSpec spec;
  spec.family = StreamFamily::kBursty;
  spec.bursty.start = 500'000;
  spec.bursty.calm_step = 800;
  spec.bursty.burst_step = 60'000;
  spec.bursty.p_enter_burst = 0.002;
  spec.bursty.p_exit_burst = 0.05;
  auto streams = make_stream_set(spec, kRouters, kSeed);

  Cluster cluster(kRouters, kSeed);
  TopkFilterMonitor monitor(kTop);

  // Drive the cluster manually: observe, then let the monitor react.
  for (NodeId r = 0; r < kRouters; ++r) {
    cluster.set_value(r, streams.advance(r));
  }
  monitor.initialize(cluster);

  std::size_t topset_changes = 0;
  auto last_top = monitor.topk();
  for (TimeStep t = 1; t <= kSteps; ++t) {
    for (NodeId r = 0; r < kRouters; ++r) {
      cluster.set_value(r, streams.advance(r));
    }
    monitor.step(cluster, t);
    if (monitor.topk() != last_top) {
      ++topset_changes;
      last_top = monitor.topk();
    }
    // Spot-check the coordinator's answer like the test-suite would.
    if (t % 500 == 0 && !is_valid_topk(cluster, monitor.topk())) {
      std::cerr << "DIVERGED at t=" << t << "\n";
      return 1;
    }
  }

  std::cout << "network telemetry: " << kRouters << " routers, top-" << kTop
            << ", " << kSteps << " steps\n\n";
  std::cout << "hot set changed " << topset_changes << " times; final top-"
            << kTop << " routers:";
  for (const NodeId id : monitor.topk()) std::cout << " R" << id;
  std::cout << "\n\n";

  const auto& stats = cluster.stats();
  std::cout << "message bill: " << stats.summary() << "  ("
            << fmt(static_cast<double>(stats.total()) / kSteps, 2)
            << "/step vs " << kRouters << "/step naive)\n\n";

  Table by_kind({"message kind", "count", "direction"});
  const struct {
    MsgKind kind;
    const char* dir;
  } kinds[] = {
      {MsgKind::kValueReport, "node -> coordinator"},
      {MsgKind::kViolation, "node -> coordinator"},
      {MsgKind::kRoundBeacon, "broadcast"},
      {MsgKind::kWinnerAnnounce, "broadcast"},
      {MsgKind::kFilterUpdate, "broadcast"},
      {MsgKind::kProtocolStart, "broadcast"},
      {MsgKind::kFilterAssign, "coordinator -> node"},
      {MsgKind::kProbe, "coordinator -> node"},
  };
  for (const auto& row : kinds) {
    by_kind.add_row({std::string(msg_kind_name(row.kind)),
                     fmt_count(stats.by_kind(row.kind)), row.dir});
  }
  by_kind.print(std::cout);

  const auto& ms = monitor.monitor_stats();
  std::cout << "\nalgorithm events: " << ms.filter_resets << " resets, "
            << ms.midpoint_updates << " midpoint updates, "
            << ms.protocol_runs << " protocol executions\n";
  return 0;
}
