// Quickstart: monitor the top-3 of 10 random-walk streams and print what
// the coordinator knows, what it cost, and how that compares to the
// offline optimum.
//
//   $ ./quickstart
//
// Walk-through of the core API:
//   1. describe the workload (StreamSpec -> make_stream_set),
//   2. pick an algorithm (TopkFilterMonitor = the paper's Algorithm 1),
//   3. drive it with run_monitor (validates every step against ground
//      truth), and
//   4. inspect CommStats / MonitorStats / the competitive ratio.
#include <iostream>

#include "topkmon.hpp"

int main() {
  using namespace topkmon;

  // 1. Ten nodes, each observing a private random-walk stream.
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 250;      // temporal similarity: filters shine here
  spec.walk.lo = 0;
  spec.walk.hi = 60'000;

  constexpr std::size_t kNodes = 10;
  constexpr std::size_t kK = 3;
  constexpr std::uint64_t kSeed = 2024;
  auto streams = make_stream_set(spec, kNodes, kSeed);

  // 2. The paper's filter-based algorithm.
  TopkFilterMonitor monitor(kK);

  // 3. Run 5000 steps; the runner checks the coordinator's answer against
  //    the ground truth after every observation and records the trace so
  //    we can compare against the offline optimum afterwards.
  RunConfig cfg;
  cfg.n = kNodes;
  cfg.k = kK;
  cfg.steps = 5'000;
  cfg.seed = kSeed;
  cfg.record_trace = true;
  const RunResult result = run_monitor(monitor, streams, cfg);

  // 4. What do we know, and what did it cost?
  std::cout << "correct at every step: " << (result.correct ? "yes" : "NO")
            << "\n";
  std::cout << "current top-" << kK << " node ids:";
  for (const NodeId id : monitor.topk()) std::cout << " " << id;
  std::cout << "\n\n";

  std::cout << "communication: " << result.comm.summary() << "\n";
  std::cout << "  messages per step: " << fmt(result.messages_per_step(), 3)
            << " (naive forwarding would pay " << kNodes << " per step)\n";
  std::cout << "  filter resets: " << result.monitor.filter_resets
            << ", midpoint updates: " << result.monitor.midpoint_updates
            << ", violation steps: " << result.monitor.violation_steps << "\n";

  const auto opt = compute_offline_opt(*result.trace, kK);
  std::cout << "\noffline optimum (Lemma 3.2 greedy): " << opt.updates()
            << " filter updates\n";
  std::cout << "empirical competitive ratio: "
            << fmt(competitive_ratio(result, kK), 1) << "  (Theorem 4.4 bound"
            << " scale: (log Delta + k) * log n)\n";
  return 0;
}
