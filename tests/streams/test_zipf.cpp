// Unit + distribution tests for Zipf / Pareto generators.
#include "streams/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace topkmon {
namespace {

TEST(ZipfSampler, RejectsBadParams) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(ZipfSampler, RanksInRange) {
  ZipfSampler z(100, 1.1);
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const auto r = z.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  ZipfSampler z(4, 0.0);
  Rng rng(5);
  std::vector<int> counts(5, 0);
  constexpr int kN = 40'000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (std::size_t r = 1; r <= 4; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]), kN / 4.0, kN / 4.0 * 0.08);
  }
}

TEST(ZipfSampler, FrequenciesFollowPowerLaw) {
  constexpr double kS = 1.0;
  ZipfSampler z(8, kS);
  Rng rng(7);
  std::vector<int> counts(9, 0);
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  // P(1)/P(2) should be ~2 for s = 1.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.2);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[4], 4.0, 0.5);
  // Monotone decreasing.
  for (std::size_t r = 1; r < 8; ++r) EXPECT_GE(counts[r], counts[r + 1]);
}

TEST(ZipfSampler, SingleRankAlwaysOne) {
  ZipfSampler z(1, 2.0);
  Rng rng(9);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(z.sample(rng), 1u);
}

TEST(ZipfStream, RejectsNonPositivePeak) {
  EXPECT_THROW(ZipfStream(10, 1.0, 0, Rng(1)), std::invalid_argument);
}

TEST(ZipfStream, ValuesPositiveBoundedByPeak) {
  ZipfStream s(100, 1.2, 1'000'000, Rng(11));
  for (int i = 0; i < 5'000; ++i) {
    const Value v = s.next();
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 1'000'000);
  }
}

TEST(ZipfStream, PeakValueAppears) {
  ZipfStream s(100, 1.0, 10'000, Rng(13));
  bool saw_peak = false;
  for (int i = 0; i < 2'000 && !saw_peak; ++i) saw_peak = (s.next() == 10'000);
  EXPECT_TRUE(saw_peak);  // rank 1 has probability ~0.19 at s=1, M=100
}

TEST(Pareto, RejectsBadParams) {
  EXPECT_THROW(ParetoStream(0, 1.0, 10, Rng(1)), std::invalid_argument);
  EXPECT_THROW(ParetoStream(10, 0.0, 100, Rng(1)), std::invalid_argument);
  EXPECT_THROW(ParetoStream(10, 1.0, 5, Rng(1)), std::invalid_argument);
}

TEST(Pareto, ValuesAtLeastXm) {
  ParetoStream s(1'000, 1.5, 1'000'000, Rng(15));
  for (int i = 0; i < 5'000; ++i) {
    const Value v = s.next();
    EXPECT_GE(v, 1'000);
    EXPECT_LE(v, 1'000'000);
  }
}

TEST(Pareto, TailHeavierThanExponential) {
  // For Pareto(alpha=1.5), P(V > 10*xm) = 10^-1.5 ~ 3.16%.
  ParetoStream s(1'000, 1.5, 1'000'000'000, Rng(17));
  int tail = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) tail += (s.next() > 10'000) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(tail) / kN, 0.0316, 0.006);
}

}  // namespace
}  // namespace topkmon
