// Batched generation must be a pure optimization: next_batch() and the
// StreamSet lookahead (plan_steps + advance_all) produce exactly the
// per-call next() sequences for every family, including the DistinctStream
// fold and finite replay traces.
#include <gtest/gtest.h>

#include <vector>

#include "streams/factory.hpp"
#include "streams/trace.hpp"

namespace topkmon {
namespace {

constexpr std::size_t kN = 9;
constexpr std::size_t kSteps = 300;
constexpr std::uint64_t kSeed = 321;

StreamSpec spec_for(StreamFamily family, bool distinct) {
  StreamSpec spec;
  spec.family = family;
  spec.enforce_distinct = distinct;
  return spec;
}

TEST(BatchEquivalence, AdvanceAllMatchesScalarAdvancePerFamily) {
  for (const StreamFamily family : all_families()) {
    for (const bool distinct : {false, true}) {
      auto scalar = make_stream_set(spec_for(family, distinct), kN, kSeed);
      auto batched = make_stream_set(spec_for(family, distinct), kN, kSeed);
      batched.plan_steps(kSteps);

      std::vector<Value> got(kN);
      for (std::size_t t = 0; t < kSteps; ++t) {
        batched.advance_all(got);
        for (NodeId id = 0; id < kN; ++id) {
          ASSERT_EQ(got[id], scalar.advance(id))
              << family_name(family) << " distinct=" << distinct
              << " t=" << t << " node=" << id;
        }
      }
    }
  }
}

TEST(BatchEquivalence, MixedAdvanceAndAdvanceAllStayConsistent) {
  auto scalar = make_stream_set(spec_for(StreamFamily::kRandomWalk, true),
                                kN, kSeed);
  auto mixed = make_stream_set(spec_for(StreamFamily::kRandomWalk, true),
                               kN, kSeed);
  mixed.plan_steps(2 * kSteps);
  std::vector<Value> got(kN);
  for (std::size_t t = 0; t < kSteps; ++t) {
    if (t % 3 == 0) {
      for (NodeId id = 0; id < kN; ++id) {
        ASSERT_EQ(mixed.advance(id), scalar.advance(id)) << "t=" << t;
      }
    } else {
      mixed.advance_all(got);
      for (NodeId id = 0; id < kN; ++id) {
        ASSERT_EQ(got[id], scalar.advance(id)) << "t=" << t;
      }
    }
  }
}

TEST(BatchEquivalence, AdvancingPastThePlanStillWorks) {
  auto scalar = make_stream_set(spec_for(StreamFamily::kZipf, false), kN,
                                kSeed);
  auto planned = make_stream_set(spec_for(StreamFamily::kZipf, false), kN,
                                 kSeed);
  planned.plan_steps(10);  // deliberately shorter than the run
  std::vector<Value> got(kN);
  for (std::size_t t = 0; t < 50; ++t) {
    planned.advance_all(got);
    for (NodeId id = 0; id < kN; ++id) {
      ASSERT_EQ(got[id], scalar.advance(id)) << "t=" << t;
    }
  }
}

TEST(BatchEquivalence, NextBatchMatchesNextOnBareStreams) {
  // Direct Stream-level check (no StreamSet): batch sizes that straddle
  // internal chunk boundaries.
  for (const StreamFamily family : all_families()) {
    auto a = make_stream_set(spec_for(family, false), 1, kSeed);
    StreamSpec spec = spec_for(family, false);
    auto b_set = make_stream_set(spec, 1, kSeed);
    b_set.plan_steps(kSteps);
    for (std::size_t t = 0; t < kSteps; ++t) {
      ASSERT_EQ(b_set.advance(0), a.advance(0))
          << family_name(family) << " t=" << t;
    }
  }
}

TEST(BatchEquivalence, TraceStreamBatchHonorsEndBehavior) {
  const std::vector<Value> vals = {5, 6, 7};

  {
    TraceStream hold(vals, TraceEnd::kHoldLast);
    std::vector<Value> out(7);
    hold.next_batch(out);
    EXPECT_EQ(out, (std::vector<Value>{5, 6, 7, 7, 7, 7, 7}));
  }
  {
    TraceStream cycle(vals, TraceEnd::kCycle);
    std::vector<Value> out(7);
    cycle.next_batch(out);
    EXPECT_EQ(out, (std::vector<Value>{5, 6, 7, 5, 6, 7, 5}));
  }
  {
    TraceStream strict(vals, TraceEnd::kThrow);
    std::vector<Value> ok(3);
    strict.next_batch(ok);
    EXPECT_EQ(ok, vals);
    std::vector<Value> over(1);
    EXPECT_THROW(strict.next_batch(over), std::out_of_range);
  }
}

TEST(BatchEquivalence, PlanLongerThanStrictTraceThrowsAtTheExactStep) {
  // A kThrow trace shorter than the plan must behave exactly like the
  // scalar path: all recorded values are delivered, and the throw
  // surfaces at the first advance past the end — never earlier because
  // of prefetching (prefetch_limit caps the lookahead).
  TraceMatrix trace(2, 5);
  Value v = 0;
  for (std::size_t t = 0; t < 5; ++t) {
    for (NodeId i = 0; i < 2; ++i) trace.at(t, i) = ++v;
  }
  auto planned = trace.to_stream_set(TraceEnd::kThrow);
  planned.plan_steps(100);  // way past the trace end
  std::vector<Value> got(2);
  for (std::size_t t = 0; t < 5; ++t) {
    planned.advance_all(got);
    EXPECT_EQ(got[0], static_cast<Value>(2 * t + 1)) << "t=" << t;
    EXPECT_EQ(got[1], static_cast<Value>(2 * t + 2)) << "t=" << t;
  }
  EXPECT_THROW(planned.advance(0), std::out_of_range);
}

TEST(BatchEquivalence, PlannedTraceMatrixReplayIsExact) {
  TraceMatrix trace(3, 20);
  Value v = 0;
  for (std::size_t t = 0; t < 20; ++t) {
    for (NodeId i = 0; i < 3; ++i) trace.at(t, i) = ++v;
  }
  auto scalar = trace.to_stream_set(TraceEnd::kThrow);
  auto planned = trace.to_stream_set(TraceEnd::kThrow);
  planned.plan_steps(20);  // exactly the trace length: no overrun, no throw
  std::vector<Value> got(3);
  for (std::size_t t = 0; t < 20; ++t) {
    planned.advance_all(got);
    for (NodeId i = 0; i < 3; ++i) {
      ASSERT_EQ(got[i], scalar.advance(i)) << "t=" << t;
    }
  }
}

}  // namespace
}  // namespace topkmon
