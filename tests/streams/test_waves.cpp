// Tests for sinusoidal, bursty and sensor streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "streams/bursty.hpp"
#include "streams/sensor.hpp"
#include "streams/sinusoidal.hpp"
#include "util/statistics.hpp"

namespace topkmon {
namespace {

TEST(Sinusoidal, RejectsNonPositivePeriod) {
  SinusoidalParams p;
  p.period = 0.0;
  EXPECT_THROW(SinusoidalStream(p, Rng(1)), std::invalid_argument);
}

TEST(Sinusoidal, NoiselessRangeAndPeriodicity) {
  SinusoidalParams p;
  p.offset = 100.0;
  p.amplitude = 50.0;
  p.period = 40.0;
  p.noise_sigma = 0.0;
  SinusoidalStream s(p, Rng(3));
  std::vector<Value> one_period;
  for (int i = 0; i < 40; ++i) one_period.push_back(s.next());
  for (const Value v : one_period) {
    EXPECT_GE(v, 50);
    EXPECT_LE(v, 150);
  }
  // Next period repeats exactly (noiseless integer-rounded wave).
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(s.next(), one_period[static_cast<std::size_t>(i)]);
  }
}

TEST(Sinusoidal, PhaseShiftsWave) {
  SinusoidalParams a;
  a.phase = 0.0;
  SinusoidalParams b = a;
  b.phase = a.period / 2.0;
  SinusoidalStream sa(a, Rng(5));
  SinusoidalStream sb(b, Rng(5));
  // Half-period phase shift mirrors the wave around the offset.
  for (int i = 0; i < 100; ++i) {
    const Value va = sa.next();
    const Value vb = sb.next();
    EXPECT_NEAR(static_cast<double>(va + vb), 2 * a.offset, 3.0);
  }
}

TEST(Sinusoidal, MeanNearOffset) {
  SinusoidalParams p;
  p.offset = 777.0;
  p.amplitude = 200.0;
  p.period = 100.0;
  p.noise_sigma = 5.0;
  SinusoidalStream s(p, Rng(7));
  OnlineStats stats;
  for (int i = 0; i < 10'000; ++i) stats.add(static_cast<double>(s.next()));
  EXPECT_NEAR(stats.mean(), 777.0, 5.0);
}

TEST(Bursty, RejectsBadParams) {
  BurstyParams p;
  p.lo = 10;
  p.hi = 0;
  EXPECT_THROW(BurstyStream(p, Rng(1)), std::invalid_argument);
}

TEST(Bursty, StaysWithinBounds) {
  BurstyParams p;
  p.lo = 0;
  p.hi = 1'000;
  p.start = 500;
  p.burst_step = 5'000;  // bursts would jump out without the clamp
  p.p_enter_burst = 0.2;
  BurstyStream s(p, Rng(9));
  for (int i = 0; i < 5'000; ++i) {
    const Value v = s.next();
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 1'000);
  }
}

TEST(Bursty, EntersAndExitsBursts) {
  BurstyParams p;
  p.p_enter_burst = 0.05;
  p.p_exit_burst = 0.2;
  BurstyStream s(p, Rng(11));
  bool saw_burst = false;
  bool saw_calm_after_burst = false;
  for (int i = 0; i < 5'000; ++i) {
    (void)s.next();
    if (s.in_burst()) saw_burst = true;
    else if (saw_burst) saw_calm_after_burst = true;
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_TRUE(saw_calm_after_burst);
}

TEST(Bursty, BurstsIncreaseVolatility) {
  BurstyParams p;
  p.calm_step = 1;
  p.burst_step = 1'000;
  p.p_enter_burst = 0.01;
  p.p_exit_burst = 0.05;
  BurstyStream s(p, Rng(13));
  OnlineStats calm_steps;
  OnlineStats burst_steps;
  Value prev = s.next();
  for (int i = 0; i < 20'000; ++i) {
    const Value v = s.next();
    const auto jump = static_cast<double>(std::llabs(v - prev));
    (s.in_burst() ? burst_steps : calm_steps).add(jump);
    prev = v;
  }
  ASSERT_GT(calm_steps.count(), 0u);
  ASSERT_GT(burst_steps.count(), 0u);
  EXPECT_GT(burst_steps.mean(), 10 * calm_steps.mean());
}

TEST(Sensor, RejectsBadParams) {
  SensorParams p;
  p.diurnal_period = 0.0;
  EXPECT_THROW(SensorStream(p, Rng(1)), std::invalid_argument);
}

TEST(Sensor, StaysWithinBounds) {
  SensorParams p;
  SensorStream s(p, Rng(15));
  for (int i = 0; i < 20'000; ++i) {
    const Value v = s.next();
    EXPECT_GE(v, p.lo);
    EXPECT_LE(v, p.hi);
  }
}

TEST(Sensor, DiurnalCycleVisible) {
  SensorParams p;
  p.base = 0.0;
  p.diurnal_amplitude = 100.0;
  p.diurnal_period = 200.0;
  p.walk_step = 0;
  p.spike_prob = 0.0;
  p.lo = -1'000;
  p.hi = 1'000;
  SensorStream s(p, Rng(17));
  Value peak = kMinusInf;
  Value trough = kPlusInf;
  for (int i = 0; i < 200; ++i) {
    const Value v = s.next();
    peak = std::max(peak, v);
    trough = std::min(trough, v);
  }
  EXPECT_GT(peak, 90);
  EXPECT_LT(trough, -90);
}

TEST(Sensor, SpikesOccur) {
  SensorParams p;
  p.spike_prob = 0.01;
  p.spike_magnitude = 500;
  p.walk_step = 0;
  p.diurnal_amplitude = 0.0;
  p.hi = 10'000;
  SensorStream s(p, Rng(19));
  Value peak = kMinusInf;
  for (int i = 0; i < 5'000; ++i) peak = std::max(peak, s.next());
  EXPECT_GT(peak, static_cast<Value>(p.base) + 400);
}

}  // namespace
}  // namespace topkmon
