// Distributional/structural checks across stream families: temporal
// similarity ordering (the property that separates the filter-friendly
// regimes from the adversarial ones), stationarity of bounded walks, and
// periodicity of the deterministic adversaries.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/ground_truth.hpp"
#include "streams/factory.hpp"
#include "util/statistics.hpp"

namespace topkmon {
namespace {

/// Mean absolute one-step change of node 0's stream over `steps`.
double mean_step(StreamFamily family, std::size_t steps, Value walk_step) {
  StreamSpec spec;
  spec.family = family;
  spec.enforce_distinct = false;
  spec.walk.max_step = walk_step;
  auto set = make_stream_set(spec, 4, 77);
  OnlineStats jumps;
  Value prev = set.advance(0);
  for (NodeId i = 1; i < 4; ++i) (void)set.advance(i);
  for (std::size_t t = 1; t < steps; ++t) {
    const Value v = set.advance(0);
    for (NodeId i = 1; i < 4; ++i) (void)set.advance(i);
    jumps.add(static_cast<double>(std::llabs(v - prev)));
    prev = v;
  }
  return jumps.mean();
}

TEST(StreamStatistics, TemporalSimilarityOrdering) {
  // Slow walks must change far less per step than iid redraws — this is
  // the axis the whole paper exploits.
  const double walk = mean_step(StreamFamily::kRandomWalk, 2'000, 10);
  const double iid = mean_step(StreamFamily::kIidUniform, 2'000, 10);
  EXPECT_LT(walk * 100, iid);
}

TEST(StreamStatistics, SensorCalmerThanBursty) {
  const double sensor = mean_step(StreamFamily::kSensor, 4'000, 0);
  StreamSpec spec;
  spec.family = StreamFamily::kBursty;
  spec.enforce_distinct = false;
  spec.bursty.p_enter_burst = 0.05;
  auto set = make_stream_set(spec, 1, 3);
  OnlineStats jumps;
  Value prev = set.advance(0);
  for (int t = 1; t < 4'000; ++t) {
    const Value v = set.advance(0);
    jumps.add(static_cast<double>(std::llabs(v - prev)));
    prev = v;
  }
  EXPECT_LT(sensor, jumps.mean());
}

TEST(StreamStatistics, WalkIsStationaryWithinBounds) {
  // Long-run mean of a reflected symmetric walk sits near the band center
  // (loose check; guards against reflection bias bugs).
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.enforce_distinct = false;
  spec.walk.lo = 0;
  spec.walk.hi = 10'000;
  spec.walk.max_step = 500;
  auto set = make_stream_set(spec, 1, 5);
  OnlineStats values;
  for (int t = 0; t < 200'000; ++t) {
    values.add(static_cast<double>(set.advance(0)));
  }
  EXPECT_NEAR(values.mean(), 5'000.0, 1'200.0);
  EXPECT_GE(values.min(), 0.0);
  EXPECT_LE(values.max(), 10'000.0);
}

TEST(StreamStatistics, RotatingMaxGroundTruthPeriod) {
  // The argmax sequence of the rotating adversary is exactly periodic.
  StreamSpec spec;
  spec.family = StreamFamily::kRotatingMax;
  spec.enforce_distinct = false;
  constexpr std::size_t kN = 6;
  auto set = make_stream_set(spec, kN, 9);
  for (int t = 0; t < 30; ++t) {
    Value best = kMinusInf;
    NodeId argmax = 0;
    for (NodeId i = 0; i < kN; ++i) {
      const Value v = set.advance(i);
      if (v > best) {
        best = v;
        argmax = i;
      }
    }
    EXPECT_EQ(argmax, static_cast<NodeId>(static_cast<std::size_t>(t) % kN))
        << "t=" << t;
  }
}

TEST(StreamStatistics, CrossingPairsBoundaryChurnsOnlyWithinPairs) {
  // With k cutting a pair in half, the ground-truth top-k set oscillates
  // with the pair period; with k aligned to pair boundaries it is static.
  StreamSpec spec;
  spec.family = StreamFamily::kCrossingPairs;
  spec.crossing.period = 16;
  spec.enforce_distinct = false;
  constexpr std::size_t kN = 8;
  auto set = make_stream_set(spec, kN, 11);
  int aligned_changes = 0;   // k = 2: top pair as a whole
  int split_changes = 0;     // k = 1: cuts the top pair
  std::vector<Value> v(kN);
  std::vector<NodeId> prev_aligned, prev_split;
  for (int t = 0; t < 64; ++t) {
    for (NodeId i = 0; i < kN; ++i) v[i] = set.advance(i);
    auto top2 = true_topk_set(v, 2);
    auto top1 = true_topk_set(v, 1);
    if (t > 0 && top2 != prev_aligned) ++aligned_changes;
    if (t > 0 && top1 != prev_split) ++split_changes;
    prev_aligned = std::move(top2);
    prev_split = std::move(top1);
  }
  EXPECT_EQ(aligned_changes, 0);
  EXPECT_GE(split_changes, 4);  // two swaps per 16-step period over 64 steps
}

TEST(StreamStatistics, ZipfTopHeavinessAcrossNodes) {
  // At any instant most nodes draw small values and few draw huge ones:
  // the max/median ratio across nodes should be large on average.
  StreamSpec spec;
  spec.family = StreamFamily::kZipf;
  spec.enforce_distinct = false;
  constexpr std::size_t kN = 32;
  auto set = make_stream_set(spec, kN, 13);
  OnlineStats ratio;
  for (int t = 0; t < 500; ++t) {
    Quantiles q;
    for (NodeId i = 0; i < kN; ++i) {
      q.add(static_cast<double>(set.advance(i)));
    }
    ratio.add(q.quantile(1.0) / std::max(1.0, q.median()));
  }
  EXPECT_GT(ratio.mean(), 5.0);  // a uniform spread would sit near 2
}

}  // namespace
}  // namespace topkmon
