// Tests for the adversarial worst-case stream constructions.
#include "streams/adversarial.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

namespace topkmon {
namespace {

TEST(RotatingMax, RejectsBadParams) {
  RotatingMaxParams p;
  p.n = 4;
  EXPECT_THROW(RotatingMaxStream(p, 4), std::invalid_argument);  // id >= n
  RotatingMaxParams hold0;
  hold0.hold = 0;
  EXPECT_THROW(RotatingMaxStream(hold0, 0), std::invalid_argument);
  RotatingMaxParams low_peak;
  low_peak.n = 8;
  low_peak.base = 100;
  low_peak.peak = 105;  // must clear base + n
  EXPECT_THROW(RotatingMaxStream(low_peak, 0), std::invalid_argument);
}

TEST(RotatingMax, ExactlyOnePeakPerStep) {
  constexpr std::size_t kN = 5;
  RotatingMaxParams p;
  p.n = kN;
  std::vector<std::unique_ptr<RotatingMaxStream>> streams;
  for (NodeId id = 0; id < kN; ++id) {
    streams.push_back(std::make_unique<RotatingMaxStream>(p, id));
  }
  for (int t = 0; t < 20; ++t) {
    int peaks = 0;
    NodeId holder = 0;
    for (NodeId id = 0; id < kN; ++id) {
      if (streams[id]->next() == p.peak) {
        ++peaks;
        holder = id;
      }
    }
    EXPECT_EQ(peaks, 1) << "t=" << t;
    EXPECT_EQ(holder, static_cast<NodeId>(t % kN));
  }
}

TEST(RotatingMax, HoldKeepsMaximumInPlace) {
  RotatingMaxParams p;
  p.n = 3;
  p.hold = 4;
  RotatingMaxStream s(p, 0);
  // Node 0 holds the maximum for the first `hold` steps.
  for (int t = 0; t < 4; ++t) EXPECT_EQ(s.next(), p.peak);
  for (int t = 4; t < 12; ++t) EXPECT_EQ(s.next(), p.base + 0);
  EXPECT_EQ(s.next(), p.peak);  // wraps around at t = 12
}

TEST(RotatingMax, BaseValuesDistinctPerNode) {
  RotatingMaxParams p;
  p.n = 4;
  RotatingMaxStream s1(p, 1);
  RotatingMaxStream s2(p, 2);
  (void)s1.next();
  (void)s2.next();  // t=0: node 0 holds the peak; 1 and 2 are at base
  EXPECT_NE(s1.next(), s2.next());
}

TEST(CrossingPairs, RejectsBadParams) {
  CrossingPairsParams p;
  p.n = 4;
  EXPECT_THROW(CrossingPairsStream(p, 4), std::invalid_argument);
  CrossingPairsParams tight;
  tight.pair_gap = 100;
  tight.amplitude = 60;  // 2*amplitude >= pair_gap
  EXPECT_THROW(CrossingPairsStream(tight, 0), std::invalid_argument);
  CrossingPairsParams short_period;
  short_period.period = 2;
  EXPECT_THROW(CrossingPairsStream(short_period, 0), std::invalid_argument);
}

TEST(CrossingPairs, PartnersCrossTwicePerPeriod) {
  CrossingPairsParams p;
  p.n = 2;
  p.period = 16;
  CrossingPairsStream a(p, 0);
  CrossingPairsStream b(p, 1);
  int sign_changes = 0;
  int prev_sign = 0;
  for (int t = 0; t < 32; ++t) {
    const Value va = a.next();
    const Value vb = b.next();
    const int sign = (va > vb) ? 1 : (va < vb ? -1 : 0);
    if (sign != 0 && prev_sign != 0 && sign != prev_sign) ++sign_changes;
    if (sign != 0) prev_sign = sign;
  }
  EXPECT_GE(sign_changes, 3);  // two crossings per period over two periods
}

TEST(CrossingPairs, PairsNeverOverlapAcrossCenters) {
  CrossingPairsParams p;
  p.n = 6;
  p.pair_gap = 10'000;
  p.amplitude = 2'000;
  std::vector<std::unique_ptr<CrossingPairsStream>> streams;
  for (NodeId id = 0; id < 6; ++id) {
    streams.push_back(std::make_unique<CrossingPairsStream>(p, id));
  }
  for (int t = 0; t < 200; ++t) {
    std::vector<Value> v;
    for (auto& s : streams) v.push_back(s->next());
    // Pair i occupies (i+1)*gap +- amplitude; higher pairs always beat
    // lower pairs.
    for (std::size_t pair = 0; pair + 1 < 3; ++pair) {
      const Value hi_of_low = std::max(v[2 * pair], v[2 * pair + 1]);
      const Value lo_of_high = std::min(v[2 * pair + 2], v[2 * pair + 3]);
      EXPECT_LT(hi_of_low, lo_of_high) << "t=" << t;
    }
  }
}

TEST(CrossingPairs, OddLeftoverNodeIsFlat) {
  CrossingPairsParams p;
  p.n = 3;
  CrossingPairsStream s(p, 2);
  const Value first = s.next();
  for (int t = 0; t < 50; ++t) EXPECT_EQ(s.next(), first);
}

}  // namespace
}  // namespace topkmon
