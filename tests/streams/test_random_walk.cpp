// Unit + property tests for the reflected random-walk stream.
#include "streams/random_walk.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace topkmon {
namespace {

TEST(RandomWalk, RejectsInvalidParams) {
  RandomWalkParams bad;
  bad.lo = 10;
  bad.hi = 0;
  EXPECT_THROW(RandomWalkStream(bad, Rng(1)), std::invalid_argument);
  RandomWalkParams neg;
  neg.max_step = -1;
  EXPECT_THROW(RandomWalkStream(neg, Rng(1)), std::invalid_argument);
}

TEST(RandomWalk, StaysWithinBounds) {
  RandomWalkParams p;
  p.start = 50;
  p.max_step = 30;
  p.lo = 0;
  p.hi = 100;
  RandomWalkStream s(p, Rng(3));
  for (int i = 0; i < 10'000; ++i) {
    const Value v = s.next();
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 100);
  }
}

TEST(RandomWalk, StepBounded) {
  RandomWalkParams p;
  p.start = 500'000;
  p.max_step = 7;
  RandomWalkStream s(p, Rng(5));
  Value prev = s.next();
  for (int i = 0; i < 5'000; ++i) {
    const Value v = s.next();
    // Away from the boundaries a step is at most max_step; reflection can
    // at most double it.
    EXPECT_LE(std::llabs(v - prev), 2 * p.max_step);
    prev = v;
  }
}

TEST(RandomWalk, ZeroStepIsConstant) {
  RandomWalkParams p;
  p.start = 123;
  p.max_step = 0;
  RandomWalkStream s(p, Rng(7));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.next(), 123);
}

TEST(RandomWalk, DegenerateIntervalPins) {
  RandomWalkParams p;
  p.start = 5;
  p.lo = 5;
  p.hi = 5;
  p.max_step = 100;
  RandomWalkStream s(p, Rng(9));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.next(), 5);
}

TEST(RandomWalk, StartClampedIntoBounds) {
  RandomWalkParams p;
  p.start = 10'000;
  p.lo = 0;
  p.hi = 100;
  p.max_step = 1;
  RandomWalkStream s(p, Rng(11));
  EXPECT_LE(s.next(), 101);  // first step from a clamped start
}

TEST(RandomWalk, DeterministicPerSeed) {
  RandomWalkParams p;
  RandomWalkStream a(p, Rng(13));
  RandomWalkStream b(p, Rng(13));
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RandomWalk, ActuallyMoves) {
  RandomWalkParams p;
  p.start = 1'000;
  p.max_step = 10;
  RandomWalkStream s(p, Rng(17));
  bool moved = false;
  const Value first = s.next();
  for (int i = 0; i < 50 && !moved; ++i) moved = (s.next() != first);
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace topkmon
