// The sparse activity-gated wrapper family: spec-string parsing, the
// exact-fraction activity schedule, golden determinism of the wrapped
// values, quiet-run certification (advance_all_active ≡ advance_all),
// and the mixed-mode guard.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "streams/factory.hpp"
#include "streams/sparse.hpp"

namespace topkmon {
namespace {

TEST(SparseSpec, ParseRoundTripAndErrors) {
  const StreamSpec spec =
      parse_stream_spec("sparse?rate=0.05,inner=iid_uniform");
  EXPECT_EQ(spec.family, StreamFamily::kSparse);
  EXPECT_DOUBLE_EQ(spec.sparse.rate, 0.05);
  EXPECT_EQ(spec.sparse_inner, StreamFamily::kIidUniform);

  // Patching an existing spec keeps unrelated fields.
  StreamSpec base;
  base.walk.max_step = 123;
  const StreamSpec patched = parse_stream_spec("sparse?rate=0.5", base);
  EXPECT_EQ(patched.walk.max_step, 123);
  EXPECT_DOUBLE_EQ(patched.sparse.rate, 0.5);
  EXPECT_EQ(patched.sparse_inner, StreamFamily::kRandomWalk);

  // Bare names still parse (legacy behavior).
  EXPECT_EQ(parse_stream_spec("zipf").family, StreamFamily::kZipf);

  EXPECT_THROW(parse_stream_spec("sparse?rate=0"), std::invalid_argument);
  EXPECT_THROW(parse_stream_spec("sparse?rate=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_stream_spec("sparse?rate=nan"), std::invalid_argument);
  EXPECT_THROW(parse_stream_spec("sparse?inner=sparse"),
               std::invalid_argument);
  EXPECT_THROW(parse_stream_spec("sparse?warp=1"), std::invalid_argument);
  EXPECT_THROW(parse_stream_spec("random_walk?rate=0.1"),
               std::invalid_argument);
  EXPECT_THROW(parse_stream_spec("no_such_family"), std::invalid_argument);
}

TEST(SparseStream, PeriodForRate) {
  EXPECT_EQ(SparseStream::period_for(1.0), 1u);
  EXPECT_EQ(SparseStream::period_for(0.5), 2u);
  EXPECT_EQ(SparseStream::period_for(0.01), 100u);
  EXPECT_THROW(SparseStream::period_for(0.0), std::invalid_argument);
  EXPECT_THROW(SparseStream::period_for(-1.0), std::invalid_argument);
  EXPECT_THROW(SparseStream::period_for(2.0), std::invalid_argument);
}

TEST(SparseStream, ExactFractionOfNodesChangesPerStep) {
  // rate 0.1 over 40 nodes: after the initial draw, exactly 4 nodes are
  // active per step (phases striped id % 10). The iid inner stream makes
  // every draw a fresh value with probability ~1, so "active" is
  // observable as "changed".
  constexpr std::size_t kN = 40;
  constexpr std::size_t kSteps = 50;
  StreamSpec spec;
  spec.family = StreamFamily::kSparse;
  spec.sparse.rate = 0.1;
  spec.sparse_inner = StreamFamily::kIidUniform;
  auto set = make_stream_set(spec, kN, 11);

  std::vector<Value> prev(kN);
  for (NodeId id = 0; id < kN; ++id) prev[id] = set.advance(id);
  for (std::size_t t = 1; t < kSteps; ++t) {
    std::size_t changed = 0;
    for (NodeId id = 0; id < kN; ++id) {
      const Value v = set.advance(id);
      if (v != prev[id]) ++changed;
      prev[id] = v;
    }
    EXPECT_EQ(changed, 4u) << "step " << t;
  }
}

TEST(SparseStream, QuietNodesRepeatExactly) {
  StreamSpec spec;
  spec.family = StreamFamily::kSparse;
  spec.sparse.rate = 0.25;  // period 4
  spec.sparse_inner = StreamFamily::kRandomWalk;
  auto set = make_stream_set(spec, 3, 9);
  std::vector<std::vector<Value>> history(3);
  for (std::size_t t = 0; t < 40; ++t) {
    for (NodeId id = 0; id < 3; ++id) history[id].push_back(set.advance(id));
  }
  for (NodeId id = 0; id < 3; ++id) {
    std::set<std::size_t> change_steps;
    for (std::size_t t = 1; t < history[id].size(); ++t) {
      if (history[id][t] != history[id][t - 1]) change_steps.insert(t);
    }
    // Changes only on the node's activity steps: multiples of 4 shifted
    // by its phase (id % 4 here), never anywhere else.
    for (const std::size_t t : change_steps) {
      EXPECT_EQ((t + id % 4) % 4, 0u) << "node " << id << " step " << t;
    }
    // A random walk with default params moves nearly every draw: expect
    // close to the maximal 9-10 activity steps in 40.
    EXPECT_GE(change_steps.size(), 7u) << "node " << id;
  }
}

TEST(SparseStream, ActiveAdvanceMatchesBatchedAdvance) {
  // advance_all_active must produce exactly the values of the batched
  // path, and its changed list exactly the value-diff set.
  constexpr std::size_t kN = 17;
  constexpr std::size_t kSteps = 200;
  StreamSpec spec;
  spec.family = StreamFamily::kSparse;
  spec.sparse.rate = 0.3;
  spec.sparse_inner = StreamFamily::kRandomWalk;

  auto batched = make_stream_set(spec, kN, 31);
  auto active = make_stream_set(spec, kN, 31);
  ASSERT_TRUE(active.quiet_capable());
  batched.plan_steps(kSteps);

  std::vector<Value> want(kN);
  std::vector<Value> got(kN, 0);
  std::vector<Value> prev(kN, 0);
  std::vector<NodeId> changed;
  for (std::size_t t = 0; t < kSteps; ++t) {
    batched.advance_all(want);
    active.advance_all_active(got, changed);
    EXPECT_EQ(got, want) << "step " << t;
    std::set<NodeId> expect_changed;
    for (NodeId id = 0; id < kN; ++id) {
      if (want[id] != prev[id]) expect_changed.insert(id);
    }
    EXPECT_EQ(std::set<NodeId>(changed.begin(), changed.end()),
              expect_changed)
        << "step " << t;
    prev = want;
  }
}

TEST(SparseStream, QuietCapability) {
  StreamSpec sparse;
  sparse.family = StreamFamily::kSparse;
  EXPECT_TRUE(make_stream_set(sparse, 4, 1).quiet_capable());
  StreamSpec walk;
  walk.family = StreamFamily::kRandomWalk;
  EXPECT_FALSE(make_stream_set(walk, 4, 1).quiet_capable());
}

TEST(SparseStream, MixedModeAfterActiveThrows) {
  StreamSpec spec;
  spec.family = StreamFamily::kSparse;
  auto set = make_stream_set(spec, 4, 1);
  std::vector<Value> values(4, 0);
  std::vector<NodeId> changed;
  set.advance_all_active(values, changed);
  EXPECT_THROW(set.advance(0), std::logic_error);
  EXPECT_THROW(set.advance_all(values), std::logic_error);
}

TEST(SparseStream, GoldenDeterminismAcrossConstructions) {
  StreamSpec spec;
  spec.family = StreamFamily::kSparse;
  spec.sparse.rate = 0.2;
  spec.sparse_inner = StreamFamily::kZipf;
  auto a = make_stream_set(spec, 6, 123);
  auto b = make_stream_set(spec, 6, 123);
  auto c = make_stream_set(spec, 6, 124);
  bool diverged = false;
  for (std::size_t t = 0; t < 60; ++t) {
    for (NodeId id = 0; id < 6; ++id) {
      const Value va = a.advance(id);
      EXPECT_EQ(va, b.advance(id));
      if (va != c.advance(id)) diverged = true;
    }
  }
  EXPECT_TRUE(diverged);  // a different seed must change the sequence
}

}  // namespace
}  // namespace topkmon
