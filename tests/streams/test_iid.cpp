// Unit tests for the iid stream generators.
#include "streams/iid.hpp"

#include <gtest/gtest.h>

#include "util/statistics.hpp"

namespace topkmon {
namespace {

TEST(IidUniform, RejectsInvertedBounds) {
  EXPECT_THROW(IidUniformStream(5, 4, Rng(1)), std::invalid_argument);
}

TEST(IidUniform, RespectsBounds) {
  IidUniformStream s(-50, 50, Rng(3));
  for (int i = 0; i < 10'000; ++i) {
    const Value v = s.next();
    EXPECT_GE(v, -50);
    EXPECT_LE(v, 50);
  }
}

TEST(IidUniform, MeanNearCenter) {
  IidUniformStream s(0, 1000, Rng(5));
  OnlineStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(static_cast<double>(s.next()));
  EXPECT_NEAR(stats.mean(), 500.0, 10.0);
}

TEST(IidUniform, NoTemporalCorrelationSignature) {
  // Successive differences of an iid uniform stream should frequently be
  // large — unlike a random walk.
  IidUniformStream s(0, 1'000'000, Rng(7));
  Value prev = s.next();
  int big_jumps = 0;
  for (int i = 0; i < 1'000; ++i) {
    const Value v = s.next();
    if (std::llabs(v - prev) > 100'000) ++big_jumps;
    prev = v;
  }
  EXPECT_GT(big_jumps, 500);
}

TEST(IidGaussian, RejectsBadParams) {
  EXPECT_THROW(IidGaussianStream(0, -1.0, 0, 10, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(IidGaussianStream(0, 1.0, 10, 0, Rng(1)),
               std::invalid_argument);
}

TEST(IidGaussian, ClampsToBounds) {
  IidGaussianStream s(0.0, 1000.0, -10, 10, Rng(9));
  for (int i = 0; i < 5'000; ++i) {
    const Value v = s.next();
    EXPECT_GE(v, -10);
    EXPECT_LE(v, 10);
  }
}

TEST(IidGaussian, MomentsMatch) {
  IidGaussianStream s(500.0, 25.0, -10'000, 10'000, Rng(11));
  OnlineStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(static_cast<double>(s.next()));
  EXPECT_NEAR(stats.mean(), 500.0, 1.0);
  EXPECT_NEAR(stats.stddev(), 25.0, 1.5);
}

}  // namespace
}  // namespace topkmon
