// Tests for the stream-set factory.
#include "streams/factory.hpp"

#include <gtest/gtest.h>

#include <set>

namespace topkmon {
namespace {

TEST(Factory, RejectsZeroNodes) {
  EXPECT_THROW(make_stream_set(StreamSpec{}, 0, 1), std::invalid_argument);
}

TEST(Factory, FamilyNamesUniqueAndComplete) {
  std::set<std::string_view> names;
  for (const auto f : all_families()) names.insert(family_name(f));
  EXPECT_EQ(names.size(), all_families().size());
  EXPECT_EQ(names.count("random_walk"), 1u);
  EXPECT_EQ(names.count("rotating_max"), 1u);
  EXPECT_EQ(names.count("?"), 0u);
}

TEST(Factory, BuildsEveryFamily) {
  for (const auto f : all_families()) {
    StreamSpec spec;
    spec.family = f;
    auto set = make_stream_set(spec, 8, 42);
    EXPECT_EQ(set.size(), 8u) << family_name(f);
    for (NodeId id = 0; id < 8; ++id) {
      (void)set.advance(id);  // must not throw
    }
  }
}

TEST(Factory, DeterministicForSeed) {
  for (const auto f : all_families()) {
    StreamSpec spec;
    spec.family = f;
    auto a = make_stream_set(spec, 4, 7);
    auto b = make_stream_set(spec, 4, 7);
    for (int t = 0; t < 50; ++t) {
      for (NodeId id = 0; id < 4; ++id) {
        ASSERT_EQ(a.advance(id), b.advance(id))
            << family_name(f) << " node " << id << " t " << t;
      }
    }
  }
}

TEST(Factory, SeedsChangeRandomFamilies) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  auto a = make_stream_set(spec, 2, 1);
  auto b = make_stream_set(spec, 2, 2);
  bool differs = false;
  for (int t = 0; t < 50 && !differs; ++t) {
    if (a.advance(0) != b.advance(0)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Factory, DistinctnessEnforcedByDefault) {
  for (const auto f : all_families()) {
    StreamSpec spec;
    spec.family = f;
    auto set = make_stream_set(spec, 16, 3);
    for (int t = 0; t < 20; ++t) {
      std::set<Value> seen;
      for (NodeId id = 0; id < 16; ++id) seen.insert(set.advance(id));
      EXPECT_EQ(seen.size(), 16u)
          << family_name(f) << ": values must be pairwise distinct at t=" << t;
    }
  }
}

TEST(Factory, WalkStartsSpreadAcrossRange) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.enforce_distinct = false;
  spec.walk.max_step = 0;  // freeze the walks at their starting points
  auto set = make_stream_set(spec, 4, 5);
  std::set<Value> starts;
  for (NodeId id = 0; id < 4; ++id) starts.insert(set.advance(id));
  EXPECT_EQ(starts.size(), 4u);  // distinct starting points
}

TEST(Factory, SinusoidPhasesSpread) {
  StreamSpec spec;
  spec.family = StreamFamily::kSinusoidal;
  spec.enforce_distinct = false;
  spec.sinus.noise_sigma = 0.0;
  auto set = make_stream_set(spec, 4, 5);
  std::set<Value> first;
  for (NodeId id = 0; id < 4; ++id) first.insert(set.advance(id));
  EXPECT_GE(first.size(), 3u);  // phase-shifted waves start apart
}

}  // namespace
}  // namespace topkmon
