// Coverage for all registered stream generator families:
//  * per-seed determinism goldens — the exact first values each family
//    produces from a fixed seed, pinned so that any change to generator
//    arithmetic, per-node parameter spreading or RNG derivation is caught
//    (the experiment suites' reproducibility rests on these sequences);
//  * same-seed/different-seed determinism properties;
//  * factory round-trip: family -> name -> family is the identity, and
//    every name builds a working stream set.
#include <gtest/gtest.h>

#include <vector>

#include "streams/factory.hpp"

namespace topkmon {
namespace {

struct Golden {
  StreamFamily family;
  const char* name;
  /// First 3 steps x 4 nodes (node-major within each step), seed 123.
  std::vector<Value> values;
};

const std::vector<Golden>& goldens() {
  static const std::vector<Golden> g{
      {StreamFamily::kRandomWalk,
       "random_walk",
       {800015, 1600010, 2400021, 3200016, 799987, 1599982, 2400025, 3199984,
        800003, 1599994, 2399997, 3199952}},
      {StreamFamily::kIidUniform,
       "iid_uniform",
       {2695947, 2402470, 3182249, 2982328, 294371, 262406, 2337037, 33644,
        3046883, 2639522, 337105, 50004}},
      {StreamFamily::kIidGaussian,
       "iid_gaussian",
       {2159007, 2185038, 1883253, 2153040, 2079255, 2080906, 1931689,
        2008096, 2134243, 1888298, 2375861, 2023776}},
      {StreamFamily::kZipf,
       "zipf",
       {173915, 307694, 57969, 93020, 4000003, 4000002, 333333, 4000000,
        80003, 190478, 4000001, 4000000}},
      {StreamFamily::kPareto,
       "pareto",
       {5203, 5618, 4657, 4864, 22779, 24590, 5721, 96708, 4795, 5278, 20809,
        74256}},
      {StreamFamily::kSinusoidal,
       "sinusoidal",
       {4003, 6002, 4001, 2000, 4067, 6002, 3937, 2000, 4127, 5998, 3877,
        2004}},
      {StreamFamily::kBursty,
       "bursty",
       {799995, 1599994, 2400001, 3199992, 800003, 1599998, 2400009, 3199996,
        800003, 1599998, 2400005, 3200000}},
      {StreamFamily::kRotatingMax,
       "rotating_max",
       {4000003, 4006, 4009, 4012, 4003, 4000002, 4009, 4012, 4003, 4006,
        4000001, 4012}},
      {StreamFamily::kCrossingPairs,
       "crossing_pairs",
       {32003, 48002, 72001, 88000, 32503, 47502, 72501, 87500, 33003, 47002,
        73001, 87000}},
      {StreamFamily::kSensor,
       "sensor",
       {727, 966, 729, 488, 731, 966, 713, 472, 735, 974, 721, 488}},
      // Default sparse spec: rate 0.1 over random_walk. Step 0 draws the
      // inner walk's first values (identical to the random_walk golden's
      // first row); with phases id % 10 no node in {0..3} is active at
      // steps 1-2, so both repeat step 0 verbatim.
      {StreamFamily::kSparse,
       "sparse",
       {800015, 1600010, 2400021, 3200016, 800015, 1600010, 2400021, 3200016,
        800015, 1600010, 2400021, 3200016}},
  };
  return g;
}

constexpr std::size_t kNodes = 4;
constexpr std::uint64_t kSeed = 123;

std::vector<Value> first_values(StreamFamily family, std::uint64_t seed,
                                std::size_t steps) {
  StreamSpec spec;
  spec.family = family;
  auto set = make_stream_set(spec, kNodes, seed);
  std::vector<Value> out;
  for (std::size_t t = 0; t < steps; ++t) {
    for (NodeId id = 0; id < kNodes; ++id) out.push_back(set.advance(id));
  }
  return out;
}

TEST(StreamFamilyGolden, CoversEveryRegisteredFamily) {
  ASSERT_EQ(goldens().size(), all_families().size());
  for (std::size_t i = 0; i < goldens().size(); ++i) {
    EXPECT_EQ(goldens()[i].family, all_families()[i]) << i;
  }
}

TEST(StreamFamilyGolden, PerSeedDeterminismGoldens) {
  for (const Golden& g : goldens()) {
    SCOPED_TRACE(g.name);
    EXPECT_EQ(first_values(g.family, kSeed, 3), g.values);
  }
}

TEST(StreamFamilyGolden, SameSeedReproducesDifferentSeedDiverges) {
  for (const Golden& g : goldens()) {
    SCOPED_TRACE(g.name);
    const auto a = first_values(g.family, 777, 8);
    const auto b = first_values(g.family, 777, 8);
    EXPECT_EQ(a, b);
    // Deterministic families (sinusoidal-like) may legitimately coincide
    // across seeds; the stochastic ones must not.
    if (g.family != StreamFamily::kSinusoidal &&
        g.family != StreamFamily::kRotatingMax &&
        g.family != StreamFamily::kCrossingPairs) {
      EXPECT_NE(a, first_values(g.family, 778, 8));
    }
  }
}

TEST(StreamFamilyRoundTrip, NameToFamilyToName) {
  for (const StreamFamily family : all_families()) {
    const auto name = family_name(family);
    EXPECT_EQ(family_from_name(name), family) << name;
    EXPECT_EQ(family_name(family_from_name(name)), name);
  }
}

TEST(StreamFamilyRoundTrip, EveryNameBuildsAWorkingStreamSet) {
  for (const Golden& g : goldens()) {
    SCOPED_TRACE(g.name);
    StreamSpec spec;
    spec.family = family_from_name(g.name);
    auto set = make_stream_set(spec, 6, 9);
    ASSERT_EQ(set.size(), 6u);
    for (NodeId id = 0; id < 6; ++id) set.advance(id);  // must not throw
  }
}

TEST(StreamFamilyRoundTrip, UnknownNameThrows) {
  EXPECT_THROW(family_from_name("not_a_family"), std::invalid_argument);
  EXPECT_THROW(family_from_name(""), std::invalid_argument);
}

}  // namespace
}  // namespace topkmon
