// Tests for replay streams and the trace matrix.
#include "streams/trace.hpp"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

TEST(TraceStream, RejectsEmpty) {
  EXPECT_THROW(TraceStream({}), std::invalid_argument);
}

TEST(TraceStream, ReplaysInOrder) {
  TraceStream s({1, 2, 3});
  EXPECT_EQ(s.next(), 1);
  EXPECT_EQ(s.next(), 2);
  EXPECT_EQ(s.next(), 3);
  EXPECT_EQ(s.length(), 3u);
}

TEST(TraceStream, HoldLastAfterEnd) {
  TraceStream s({5, 9}, TraceEnd::kHoldLast);
  (void)s.next();
  (void)s.next();
  EXPECT_EQ(s.next(), 9);
  EXPECT_EQ(s.next(), 9);
}

TEST(TraceStream, CyclesAfterEnd) {
  TraceStream s({1, 2}, TraceEnd::kCycle);
  EXPECT_EQ(s.next(), 1);
  EXPECT_EQ(s.next(), 2);
  EXPECT_EQ(s.next(), 1);
  EXPECT_EQ(s.next(), 2);
}

TEST(TraceStream, ThrowsAfterEnd) {
  TraceStream s({7}, TraceEnd::kThrow);
  EXPECT_EQ(s.next(), 7);
  EXPECT_THROW(s.next(), std::out_of_range);
}

TEST(TraceMatrix, Dimensions) {
  TraceMatrix m(3, 5);
  EXPECT_EQ(m.nodes(), 3u);
  EXPECT_EQ(m.steps(), 5u);
}

TEST(TraceMatrix, CellAccess) {
  TraceMatrix m(2, 2);
  m.at(0, 0) = 10;
  m.at(1, 1) = -4;
  EXPECT_EQ(m.at(0, 0), 10);
  EXPECT_EQ(m.at(0, 1), 0);
  EXPECT_EQ(m.at(1, 1), -4);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(TraceMatrix, ToStreamSetReplaysColumns) {
  TraceMatrix m(2, 3);
  // node 0: 1, 2, 3; node 1: 10, 20, 30
  for (std::size_t t = 0; t < 3; ++t) {
    m.at(t, 0) = static_cast<Value>(t + 1);
    m.at(t, 1) = static_cast<Value>(10 * (t + 1));
  }
  auto set = m.to_stream_set();
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.advance(0), 1);
  EXPECT_EQ(set.advance(1), 10);
  EXPECT_EQ(set.advance(0), 2);
  EXPECT_EQ(set.advance(1), 20);
  EXPECT_EQ(set.advance(0), 3);
  EXPECT_EQ(set.advance(1), 30);
  EXPECT_EQ(set.advance(0), 3);  // hold-last default
}

TEST(DistinctStream, PreservesOrderBreaksTies) {
  // Two nodes observing the same raw trace; transformed values must be
  // distinct, ordered toward the smaller id on ties, and order-preserving
  // on raw differences.
  auto raw0 = std::make_unique<TraceStream>(std::vector<Value>{5, 7});
  auto raw1 = std::make_unique<TraceStream>(std::vector<Value>{5, 6});
  DistinctStream d0(std::move(raw0), 0, 2);
  DistinctStream d1(std::move(raw1), 1, 2);
  const Value a0 = d0.next();
  const Value a1 = d1.next();
  EXPECT_NE(a0, a1);
  EXPECT_GT(a0, a1);  // tie at raw 5 -> smaller id wins
  const Value b0 = d0.next();
  const Value b1 = d1.next();
  EXPECT_GT(b0, b1);  // raw 7 > raw 6 preserved
}

}  // namespace
}  // namespace topkmon
