// NetworkSpec parsing/naming and the scheduled delivery modes of the
// rebuilt Network: fixed delay, per-link jitter, deterministic drops,
// batch coalescing, and the pending-delivery accounting that drives
// event-loop quiescence.
#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "sim/network_model.hpp"

namespace topkmon {
namespace {

Message value_report(Value v) {
  Message m;
  m.kind = MsgKind::kValueReport;
  m.a = v;
  return m;
}

TEST(NetworkSpecTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_network_spec("instant"), NetworkSpec{});
  EXPECT_EQ(parse_network_spec(""), NetworkSpec{});
  EXPECT_TRUE(parse_network_spec("instant").is_instant());
  EXPECT_EQ(NetworkSpec{}.name(), "instant");

  const auto spec = parse_network_spec("delay=2,jitter=1,drop=0.05,batch=4");
  EXPECT_EQ(spec.delay, 2u);
  EXPECT_EQ(spec.jitter, 1u);
  EXPECT_DOUBLE_EQ(spec.drop_rate, 0.05);
  EXPECT_EQ(spec.batch_window, 4u);
  EXPECT_FALSE(spec.is_instant());
  EXPECT_EQ(parse_network_spec(spec.name()), spec);

  const auto budget = parse_network_spec("ticks=8");
  EXPECT_EQ(budget.ticks_per_step, 8u);
  EXPECT_TRUE(budget.is_instant());  // budget alone keeps instant delivery

  EXPECT_THROW(parse_network_spec("delay"), std::invalid_argument);
  EXPECT_THROW(parse_network_spec("warp=9"), std::invalid_argument);
  EXPECT_THROW(parse_network_spec("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_network_spec("delay=x"), std::invalid_argument);
  // 32-bit knobs must reject (not truncate) out-of-range values — a
  // silently wrapped "delay=2^32" would masquerade as the instant model.
  EXPECT_THROW(parse_network_spec("delay=4294967296"), std::invalid_argument);
  EXPECT_THROW(parse_network_spec("jitter=99999999999"),
               std::invalid_argument);
  // NaN fails every range comparison: it must not slip into drop_rate,
  // where it would run the scheduled path yet be named "instant".
  EXPECT_THROW(parse_network_spec("drop=nan"), std::invalid_argument);
}

TEST(NetworkSpecTest, TinyDropRatesKeepTheirIdentityInNames) {
  // std::to_string-style 6-decimal formatting would report drop=1e-7 as
  // "drop=0" — a lossy run labelled lossless. name() must round-trip.
  NetworkSpec spec;
  spec.drop_rate = 1e-7;
  EXPECT_FALSE(spec.is_instant());
  EXPECT_EQ(parse_network_spec(spec.name()), spec);
  spec.drop_rate = 0.12345678;
  EXPECT_EQ(parse_network_spec(spec.name()), spec);
}

TEST(ScheduledNetworkTest, FixedDelayHoldsDeliveries) {
  CommStats stats;
  Network net(2, &stats, parse_network_spec("delay=2"), 1);

  net.node_send(0, value_report(7));
  EXPECT_EQ(net.pending_deliveries(), 1u);
  EXPECT_TRUE(net.drain_coordinator().empty());  // due at tick 2

  net.advance_clock();
  EXPECT_TRUE(net.drain_coordinator().empty());
  net.advance_clock();
  const auto mail = net.drain_coordinator();
  ASSERT_EQ(mail.size(), 1u);
  EXPECT_EQ(mail[0].a, 7);
  EXPECT_EQ(net.pending_deliveries(), 0u);
  EXPECT_EQ(stats.upstream(), 1u);  // charged at send time
}

TEST(ScheduledNetworkTest, DelayedDeliveriesArriveInSendOrder) {
  CommStats stats;
  Network net(2, &stats, parse_network_spec("delay=1"), 1);
  net.node_send(0, value_report(1));
  net.node_send(1, value_report(2));
  net.advance_clock();
  const auto mail = net.drain_coordinator();
  ASSERT_EQ(mail.size(), 2u);
  EXPECT_EQ(mail[0].a, 1);
  EXPECT_EQ(mail[1].a, 2);
}

TEST(ScheduledNetworkTest, BroadcastFansOutPerLink) {
  CommStats stats;
  Network net(3, &stats, parse_network_spec("delay=1"), 1);
  net.coord_broadcast(value_report(5));
  EXPECT_EQ(stats.broadcast(), 1u);          // charged once (paper's model)
  EXPECT_EQ(net.pending_deliveries(), 3u);   // one delivery per link
  net.advance_clock();
  for (NodeId id = 0; id < 3; ++id) {
    const auto mail = net.drain_node(id);
    ASSERT_EQ(mail.size(), 1u) << id;
    EXPECT_EQ(mail[0].a, 5);
  }
  EXPECT_EQ(net.pending_deliveries(), 0u);
}

TEST(ScheduledNetworkTest, JitterIsDeterministicAndBounded) {
  const auto spec = parse_network_spec("delay=1,jitter=3");
  const auto run = [&](std::uint64_t seed) {
    CommStats stats;
    Network net(4, &stats, spec, seed);
    for (int i = 0; i < 32; ++i) net.node_send(0, value_report(i));
    std::vector<int> arrival_tick(32, -1);
    for (int tick = 0; tick <= 5; ++tick) {
      for (const auto& m : net.drain_coordinator()) {
        arrival_tick[static_cast<std::size_t>(m.a)] = tick;
      }
      net.advance_clock();
    }
    return arrival_tick;
  };
  const auto a = run(9);
  EXPECT_EQ(a, run(9));   // same seed, same schedule
  EXPECT_NE(a, run(10));  // jitter depends on the link-hash seed
  bool saw_spread = false;
  for (const int t : a) {
    ASSERT_GE(t, 1);  // at least the fixed delay
    ASSERT_LE(t, 4);  // at most delay + jitter
    if (t != a[0]) saw_spread = true;
  }
  EXPECT_TRUE(saw_spread);
}

TEST(ScheduledNetworkTest, DropsAreDeterministicAndCharged) {
  const auto spec = parse_network_spec("drop=0.5");
  const auto run = [&](std::uint64_t seed) {
    CommStats stats;
    Network net(2, &stats, spec, seed);
    for (int i = 0; i < 200; ++i) net.node_send(0, value_report(i));
    const auto mail = net.drain_coordinator();
    EXPECT_EQ(stats.upstream(), 200u);  // sends charged even when lost
    EXPECT_EQ(mail.size() + net.dropped_deliveries(), 200u);
    std::vector<Value> got;
    for (const auto& m : mail) got.push_back(m.a);
    return got;
  };
  const auto a = run(4);
  EXPECT_EQ(a, run(4));
  // Half the messages, within loose binomial bounds.
  EXPECT_GT(a.size(), 60u);
  EXPECT_LT(a.size(), 140u);
}

TEST(ScheduledNetworkTest, BatchWindowCoalescesDeliveries) {
  CommStats stats;
  Network net(2, &stats, parse_network_spec("batch=4"), 1);
  net.node_send(0, value_report(1));  // sent at tick 0 -> due tick 0 (0 % 4)
  net.advance_clock();                // tick 1
  net.node_send(0, value_report(2));  // due tick 4
  net.advance_clock();                // tick 2
  net.node_send(0, value_report(3));  // due tick 4
  EXPECT_EQ(net.drain_coordinator().size(), 1u);  // only the tick-0 send
  net.advance_clock_to(3);
  EXPECT_TRUE(net.drain_coordinator().empty());
  net.advance_clock_to(4);
  EXPECT_EQ(net.drain_coordinator().size(), 2u);  // the window's batch
}

TEST(ScheduledNetworkTest, EarliestPendingReportsNextDeliveryTick) {
  CommStats stats;
  Network net(2, &stats, parse_network_spec("delay=3"), 1);
  EXPECT_FALSE(net.earliest_pending().has_value());
  net.coord_unicast(1, value_report(1));
  ASSERT_TRUE(net.earliest_pending().has_value());
  EXPECT_EQ(*net.earliest_pending(), 3u);
}

TEST(InstantNetworkTest, PendingAccountingTracksDrains) {
  CommStats stats;
  Network net(2, &stats);  // instant
  net.node_send(0, value_report(1));
  net.coord_broadcast(value_report(2));
  net.coord_unicast(1, value_report(3));
  EXPECT_EQ(net.pending_deliveries(), 1u + 2u + 1u);
  net.drain_coordinator();
  EXPECT_EQ(net.pending_deliveries(), 3u);
  net.drain_node(0);
  EXPECT_EQ(net.pending_deliveries(), 2u);
  net.drain_node(1);
  EXPECT_EQ(net.pending_deliveries(), 0u);
}

}  // namespace
}  // namespace topkmon
