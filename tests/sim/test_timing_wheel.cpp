// Property tests for the slab/timing-wheel scheduled transport: per-
// recipient delivery order is (delivery tick, send order) no matter how
// sends, clock advances and drains interleave; far-future deliveries
// (beyond the wheel span) take the overflow path and interleave with
// in-wheel deliveries correctly; the slab recycles nodes so repeated
// bursts do not grow memory without bound.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/network.hpp"
#include "sim/network_model.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

Message payload(std::int64_t tag) {
  Message m;
  m.kind = MsgKind::kValueReport;
  m.a = tag;
  return m;
}

TEST(TimingWheel, PerRecipientOrderIsDueThenSendOrder) {
  // Random traffic under jitter: each recipient must see its messages
  // sorted by delivery tick, and within a tick in send order. The send
  // tag encodes the global send index; delivery ticks are recovered by
  // replaying schedule decisions through a reference map keyed by drain
  // tick.
  NetworkSpec spec;
  spec.delay = 1;
  spec.jitter = 7;
  CommStats stats;
  Network net(5, &stats, spec, 99);
  Rng rng(4);

  std::map<NodeId, std::vector<std::pair<SimTime, std::int64_t>>> seen;
  std::int64_t tag = 0;
  std::vector<Message> buf;
  for (int round = 0; round < 200; ++round) {
    const int sends = static_cast<int>(rng.uniform_below(4));
    for (int s = 0; s < sends; ++s) {
      switch (rng.uniform_below(3)) {
        case 0:
          net.node_send(static_cast<NodeId>(rng.uniform_below(5)),
                        payload(++tag));
          break;
        case 1:
          net.coord_unicast(static_cast<NodeId>(rng.uniform_below(5)),
                            payload(++tag));
          break;
        default:
          net.coord_broadcast(payload(++tag));
          break;
      }
    }
    // Advance exactly one tick and drain: each drain then surfaces the
    // messages due at precisely this tick, where send order must hold.
    // (Multi-tick strides mix due ticks inside one drain — covered by
    // the conservation test below.)
    net.advance_clock();
    for (NodeId id = 0; id < 5; ++id) {
      net.drain_node(id, buf);
      for (const Message& m : buf) seen[id].emplace_back(net.now(), m.a);
    }
    net.drain_coordinator(buf);
    for (const Message& m : buf) {
      seen[static_cast<NodeId>(5)].emplace_back(net.now(), m.a);
    }
  }
  // Flush everything still in flight, still tick by tick.
  while (net.pending_deliveries() > 0) {
    net.advance_clock();
    for (NodeId id = 0; id < 5; ++id) {
      net.drain_node(id, buf);
      for (const Message& m : buf) seen[id].emplace_back(net.now(), m.a);
    }
    net.drain_coordinator(buf);
    for (const Message& m : buf) {
      seen[static_cast<NodeId>(5)].emplace_back(net.now(), m.a);
    }
  }

  for (const auto& [id, deliveries] : seen) {
    for (std::size_t i = 1; i < deliveries.size(); ++i) {
      // Drain ticks are non-decreasing by construction; within one drain
      // the send tags must ascend (equal-due messages replay send order,
      // distinct-due messages were sorted by due).
      ASSERT_LE(deliveries[i - 1].first, deliveries[i].first) << "id " << id;
      if (deliveries[i - 1].first == deliveries[i].first) {
        EXPECT_LT(deliveries[i - 1].second, deliveries[i].second)
            << "id " << id << " delivery " << i;
      }
    }
  }
}

TEST(TimingWheel, FarFutureDeliveriesUseOverflowAndArriveOnTime) {
  // delay far beyond the wheel span (4096 ticks) forces the overflow
  // heap; deliveries must still surface exactly at their due tick.
  NetworkSpec spec;
  spec.delay = 10'000;
  CommStats stats;
  Network net(2, &stats, spec, 1);

  net.node_send(0, payload(1));
  ASSERT_TRUE(net.earliest_pending().has_value());
  EXPECT_EQ(*net.earliest_pending(), 10'000u);

  net.advance_clock_to(9'999);
  EXPECT_TRUE(net.drain_coordinator().empty());
  net.advance_clock();
  const auto mail = net.drain_coordinator();
  ASSERT_EQ(mail.size(), 1u);
  EXPECT_EQ(mail[0].a, 1);
  EXPECT_EQ(net.pending_deliveries(), 0u);
}

TEST(TimingWheel, OverflowAndWheelMixDeliverWithinBoundsLosingNothing) {
  // Jitter span far beyond the wheel cap (4096): per-message schedules
  // land on both the wheel and the overflow heap, interleaved. Each
  // message carries its send tick; every delivery must land inside
  // [send + delay, send + delay + jitter] and nothing may be lost.
  NetworkSpec spec;
  spec.delay = 1'000;
  spec.jitter = 8'000;
  CommStats stats;
  Network net(2, &stats, spec, 21);
  Rng rng(8);

  constexpr int kSends = 300;
  int sent = 0;
  std::size_t got = 0;
  while (sent < kSends || net.pending_deliveries() > 0) {
    if (sent < kSends) {
      net.node_send(0, payload(static_cast<std::int64_t>(net.now())));
      ++sent;
    }
    net.advance_clock_to(net.now() + 1 + rng.uniform_below(40));
    for (const Message& m : net.drain_coordinator()) {
      const auto send_tick = static_cast<SimTime>(m.a);
      EXPECT_GE(net.now(), send_tick + 1'000);
      // Drains lag deliveries by up to the advance stride (40).
      EXPECT_LE(net.now(), send_tick + 1'000 + 8'000 + 40);
      ++got;
    }
  }
  EXPECT_EQ(got, static_cast<std::size_t>(kSends) - net.dropped_deliveries());
  EXPECT_EQ(net.dropped_deliveries(), 0u);
}

TEST(TimingWheel, JitterSpansWheelBoundary) {
  // delay + jitter straddling the wheel cap: some messages take the
  // wheel, some the overflow, on the same link. Total delivered must
  // match total scheduled, each within [delay, delay + jitter].
  NetworkSpec spec;
  spec.delay = 4'000;
  spec.jitter = 500;  // span 4502 > wheel cap 4096
  CommStats stats;
  Network net(2, &stats, spec, 7);

  constexpr int kSends = 200;
  for (int i = 0; i < kSends; ++i) net.node_send(0, payload(i));
  std::size_t got = 0;
  SimTime first = 0;
  SimTime last = 0;
  for (SimTime t = 1; t <= 4'500; ++t) {
    net.advance_clock();
    const auto mail = net.drain_coordinator();
    if (!mail.empty() && first == 0) first = t;
    if (!mail.empty()) last = t;
    got += mail.size();
  }
  EXPECT_EQ(got, static_cast<std::size_t>(kSends));
  EXPECT_GE(first, 4'000u);
  EXPECT_LE(last, 4'500u);
  EXPECT_EQ(net.pending_deliveries(), 0u);
}

TEST(TimingWheel, RepeatedBurstsRecycleSlabNodes) {
  // The slab must reuse freed nodes: after a warm-up burst, identical
  // bursts keep pending/dropped accounting exact and deliver everything
  // (a leak would eventually misindex the free list — this is the
  // functional canary; the allocation count itself is covered by the
  // perf suite's alloc hook).
  NetworkSpec spec;
  spec.delay = 3;
  CommStats stats;
  Network net(4, &stats, spec, 3);
  std::vector<Message> buf;
  for (int burst = 0; burst < 50; ++burst) {
    for (int i = 0; i < 32; ++i) {
      net.coord_broadcast(payload(burst * 100 + i));
    }
    EXPECT_EQ(net.pending_deliveries(), 4u * 32u);
    net.advance_clock_to(net.now() + 3);
    for (NodeId id = 0; id < 4; ++id) {
      net.drain_node(id, buf);
      EXPECT_EQ(buf.size(), 32u) << "burst " << burst << " node " << id;
    }
    EXPECT_EQ(net.pending_deliveries(), 0u);
  }
}

}  // namespace
}  // namespace topkmon
