// Buffer-reuse drains: the drain_*(buffer&) overloads must deliver
// exactly what the legacy returning overloads deliver (ordering included),
// clear the caller's buffer, and retain its capacity across calls so the
// settled hot path performs no allocations. Also covers the maintained
// earliest_pending() minimum and instant-mode broadcast-log compaction.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cluster.hpp"
#include "sim/network.hpp"
#include "sim/network_model.hpp"

namespace topkmon {
namespace {

Message msg(MsgKind kind, std::int64_t a, std::int64_t b = 0) {
  Message m;
  m.kind = kind;
  m.a = a;
  m.b = b;
  return m;
}

void expect_same(const std::vector<Message>& got,
                 const std::vector<Message>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].kind, want[i].kind) << "at " << i;
    EXPECT_EQ(got[i].from, want[i].from) << "at " << i;
    EXPECT_EQ(got[i].a, want[i].a) << "at " << i;
    EXPECT_EQ(got[i].b, want[i].b) << "at " << i;
  }
}

/// Drives `fn(net)` against two identical networks and checks that every
/// drain agrees between the returning and the buffer-filling overloads.
template <typename Traffic>
void compare_drains(const NetworkSpec& spec, Traffic traffic) {
  CommStats stats_a;
  CommStats stats_b;
  Network legacy(3, &stats_a, spec, 7);
  Network reuse(3, &stats_b, spec, 7);
  traffic(legacy);
  traffic(reuse);

  std::vector<Message> buf;
  for (int tick = 0; tick < 12; ++tick) {
    for (NodeId id = 0; id < 3; ++id) {
      const auto want = legacy.drain_node(id);
      reuse.drain_node(id, buf);
      expect_same(buf, want);
    }
    const auto want = legacy.drain_coordinator();
    reuse.drain_coordinator(buf);
    expect_same(buf, want);
    legacy.advance_clock();
    reuse.advance_clock();
  }
  EXPECT_EQ(legacy.pending_deliveries(), reuse.pending_deliveries());
  EXPECT_EQ(legacy.dropped_deliveries(), reuse.dropped_deliveries());
}

void mixed_traffic(Network& net) {
  net.node_send(0, msg(MsgKind::kValueReport, 10));
  net.coord_broadcast(msg(MsgKind::kRoundBeacon, 20));
  net.coord_unicast(1, msg(MsgKind::kFilterAssign, 30, 40));
  net.coord_broadcast(msg(MsgKind::kFilterUpdate, 50));
  net.node_send(2, msg(MsgKind::kViolation, 60, 1));
  net.coord_unicast(1, msg(MsgKind::kProbe, 0));
}

TEST(DrainReuse, InstantMatchesLegacy) {
  compare_drains(NetworkSpec{}, mixed_traffic);
}

TEST(DrainReuse, ScheduledDelayJitterMatchesLegacy) {
  NetworkSpec spec;
  spec.delay = 2;
  spec.jitter = 3;
  compare_drains(spec, mixed_traffic);
}

TEST(DrainReuse, ScheduledDropMatchesLegacy) {
  NetworkSpec spec;
  spec.delay = 1;
  spec.drop_rate = 0.4;
  compare_drains(spec, mixed_traffic);
}

TEST(DrainReuse, BufferIsClearedAndKeepsCapacity) {
  CommStats stats;
  Network net(2, &stats);

  std::vector<Message> buf;
  buf.push_back(msg(MsgKind::kProbe, 999));  // stale junk must vanish

  // Big burst establishes capacity.
  for (int i = 0; i < 100; ++i) {
    net.node_send(0, msg(MsgKind::kValueReport, i));
  }
  net.drain_coordinator(buf);
  ASSERT_EQ(buf.size(), 100u);
  EXPECT_EQ(buf[0].a, 0);
  const std::size_t cap = buf.capacity();
  ASSERT_GE(cap, 100u);

  // The instant drain swaps the caller's scratch with the inbox, so the
  // storage ping-pongs between (at most) two blocks; after a warm-up
  // round both blocks are sized and no further allocation happens.
  for (int i = 0; i < 10; ++i) {
    net.node_send(1, msg(MsgKind::kValueReport, i));
  }
  net.drain_coordinator(buf);  // sizes the second block
  const Message* block_a = buf.data();
  for (int i = 0; i < 10; ++i) {
    net.node_send(1, msg(MsgKind::kValueReport, i));
  }
  net.drain_coordinator(buf);
  const Message* block_b = buf.data();

  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 10; ++i) {
      net.node_send(1, msg(MsgKind::kValueReport, i));
    }
    net.drain_coordinator(buf);
    EXPECT_EQ(buf.size(), 10u);
    EXPECT_GE(buf.capacity(), 10u);
    EXPECT_TRUE(buf.data() == block_a || buf.data() == block_b)
        << "steady-state drain allocated a fresh block";
    net.drain_coordinator(buf);  // empty drain: cleared, no new storage
    EXPECT_TRUE(buf.empty());
    EXPECT_TRUE(buf.data() == block_a || buf.data() == block_b);
  }
}

TEST(DrainReuse, EmptyDrainLeavesBufferEmpty) {
  CommStats stats;
  Network net(2, &stats);
  std::vector<Message> buf(5, msg(MsgKind::kProbe, 1));
  net.drain_node(0, buf);
  EXPECT_TRUE(buf.empty());
  net.drain_coordinator(buf);
  EXPECT_TRUE(buf.empty());
}

TEST(DrainReuse, BadNodeIdStillThrows) {
  CommStats stats;
  Network net(2, &stats);
  std::vector<Message> buf;
  EXPECT_THROW(net.drain_node(2, buf), std::out_of_range);
}

TEST(EarliestPending, TracksDeliveriesUnderScheduledTraffic) {
  NetworkSpec spec;
  spec.delay = 3;
  spec.jitter = 5;
  spec.drop_rate = 0.2;
  CommStats stats;
  Network net(8, &stats, spec, 42);

  std::vector<Message> buf;
  std::uint64_t delivered = 0;
  std::uint64_t sent_seq = 0;
  for (int round = 0; round < 50; ++round) {
    // Interleave sends of every flavor.
    net.node_send(static_cast<NodeId>(round % 8),
                  msg(MsgKind::kValueReport, ++sent_seq));
    if (round % 3 == 0) {
      net.coord_broadcast(msg(MsgKind::kRoundBeacon, ++sent_seq));
    }
    if (round % 4 == 0) {
      net.coord_unicast(static_cast<NodeId>(round % 8),
                        msg(MsgKind::kProbe, ++sent_seq));
    }

    const auto earliest = net.earliest_pending();
    if (net.pending_deliveries() == 0) {
      EXPECT_FALSE(earliest.has_value());
    } else {
      ASSERT_TRUE(earliest.has_value());
      if (*earliest > net.now()) {
        // Nothing may surface before the predicted tick...
        for (NodeId id = 0; id < 8; ++id) {
          net.drain_node(id, buf);
          EXPECT_TRUE(buf.empty());
        }
        net.drain_coordinator(buf);
        EXPECT_TRUE(buf.empty());
        // ...and advancing exactly to it must surface something.
        net.advance_clock_to(*earliest);
        std::size_t got = 0;
        for (NodeId id = 0; id < 8; ++id) {
          net.drain_node(id, buf);
          got += buf.size();
        }
        net.drain_coordinator(buf);
        got += buf.size();
        EXPECT_GT(got, 0u);
        delivered += got;
      } else {
        // Already due: a full drain must surface at least one message.
        std::size_t got = 0;
        for (NodeId id = 0; id < 8; ++id) {
          net.drain_node(id, buf);
          got += buf.size();
        }
        net.drain_coordinator(buf);
        got += buf.size();
        EXPECT_GT(got, 0u);
        delivered += got;
      }
    }
    net.advance_clock();
  }
  EXPECT_GT(delivered, 0u);
}

TEST(EarliestPending, InstantIsNow) {
  CommStats stats;
  Network net(2, &stats);
  EXPECT_FALSE(net.earliest_pending().has_value());
  net.coord_broadcast(msg(MsgKind::kRoundBeacon, 1));
  net.advance_clock();
  ASSERT_TRUE(net.earliest_pending().has_value());
  EXPECT_EQ(*net.earliest_pending(), net.now());
}

TEST(BroadcastLog, CompactsOnceAllNodesReadWhileCountingAllIssues) {
  CommStats stats;
  Network net(4, &stats);
  std::vector<Message> buf;
  constexpr std::size_t kBroadcasts = 20'000;
  std::size_t received = 0;
  for (std::size_t i = 0; i < kBroadcasts; ++i) {
    net.coord_broadcast(msg(MsgKind::kRoundBeacon,
                            static_cast<std::int64_t>(i)));
    if (i % 2 == 1) {
      for (NodeId id = 0; id < 4; ++id) {
        net.drain_node(id, buf);
        // Two broadcasts per drain, in issue order, values i-1 and i.
        ASSERT_EQ(buf.size(), 2u);
        EXPECT_EQ(buf[0].a, static_cast<std::int64_t>(i - 1));
        EXPECT_EQ(buf[1].a, static_cast<std::int64_t>(i));
        received += buf.size();
      }
    }
  }
  EXPECT_EQ(net.broadcast_log_size(), kBroadcasts);  // issue counter intact
  // The retained log was compacted: without compaction it would hold all
  // 20'000 stamped entries.
  EXPECT_LT(net.broadcast_log().size(), 10'000u);
  EXPECT_EQ(received, kBroadcasts * 4);
  EXPECT_EQ(net.pending_deliveries(), 0u);
}

TEST(BroadcastLog, StragglerNodeDefersCompactionButLosesNothing) {
  CommStats stats;
  Network net(3, &stats);
  std::vector<Message> buf;
  constexpr std::size_t kBroadcasts = 6'000;
  for (std::size_t i = 0; i < kBroadcasts; ++i) {
    net.coord_broadcast(msg(MsgKind::kRoundBeacon,
                            static_cast<std::int64_t>(i)));
    // Nodes 0 and 1 keep up; node 2 never drains.
    net.drain_node(0, buf);
    net.drain_node(1, buf);
  }
  // The straggler still gets every broadcast, in order.
  net.drain_node(2, buf);
  ASSERT_EQ(buf.size(), kBroadcasts);
  for (std::size_t i = 0; i < kBroadcasts; ++i) {
    EXPECT_EQ(buf[i].a, static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(net.broadcast_log_size(), kBroadcasts);
}

}  // namespace
}  // namespace topkmon
