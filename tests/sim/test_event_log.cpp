// Tests for the structured message trace (EventLog + Network tap).
#include "sim/event_log.hpp"

#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "protocols/extremum.hpp"

namespace topkmon {
namespace {

Message mk(MsgKind kind, std::int64_t a = 0) {
  Message m;
  m.kind = kind;
  m.a = a;
  return m;
}

TEST(EventLog, StartsEmpty) {
  EventLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLog, RecordsWithCurrentStep) {
  EventLog log;
  log.begin_step(3);
  log.record(MsgDirection::kUpstream, mk(MsgKind::kValueReport, 7));
  log.begin_step(4);
  log.record(MsgDirection::kBroadcast, mk(MsgKind::kRoundBeacon, 9));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].step, 3u);
  EXPECT_EQ(log.events()[0].message.a, 7);
  EXPECT_EQ(log.events()[1].step, 4u);
  EXPECT_EQ(log.events()[1].direction, MsgDirection::kBroadcast);
}

TEST(EventLog, CountsByKindAndDirection) {
  EventLog log;
  log.record(MsgDirection::kUpstream, mk(MsgKind::kValueReport));
  log.record(MsgDirection::kUpstream, mk(MsgKind::kValueReport));
  log.record(MsgDirection::kBroadcast, mk(MsgKind::kRoundBeacon));
  EXPECT_EQ(log.count_kind(MsgKind::kValueReport), 2u);
  EXPECT_EQ(log.count_kind(MsgKind::kRoundBeacon), 1u);
  EXPECT_EQ(log.count_kind(MsgKind::kProbe), 0u);
  EXPECT_EQ(log.count_direction(MsgDirection::kUpstream), 2u);
  EXPECT_EQ(log.count_direction(MsgDirection::kUnicast), 0u);
}

TEST(EventLog, PerStepQueries) {
  EventLog log;
  log.begin_step(1);
  log.record(MsgDirection::kUpstream, mk(MsgKind::kValueReport));
  log.begin_step(5);
  log.record(MsgDirection::kUpstream, mk(MsgKind::kValueReport));
  log.record(MsgDirection::kBroadcast, mk(MsgKind::kFilterUpdate));
  EXPECT_EQ(log.at_step(1).size(), 1u);
  EXPECT_EQ(log.at_step(5).size(), 2u);
  EXPECT_TRUE(log.at_step(3).empty());
  EXPECT_EQ(log.count_kind_at(MsgKind::kFilterUpdate, 5), 1u);
  EXPECT_EQ(log.count_kind_at(MsgKind::kFilterUpdate, 1), 0u);
  EXPECT_EQ(log.active_steps(), (std::vector<TimeStep>{1, 5}));
}

TEST(EventLog, DumpAndLimit) {
  EventLog log;
  for (int i = 0; i < 5; ++i) {
    log.record(MsgDirection::kBroadcast, mk(MsgKind::kRoundBeacon, i));
  }
  const auto full = log.dump();
  EXPECT_EQ(std::count(full.begin(), full.end(), '\n'), 5);
  const auto limited = log.dump(2);
  EXPECT_NE(limited.find("more"), std::string::npos);
}

TEST(EventLog, ClearResets) {
  EventLog log;
  log.record(MsgDirection::kUpstream, mk(MsgKind::kValueReport));
  log.clear();
  EXPECT_TRUE(log.empty());
}

TEST(EventLog, TapsNetworkTraffic) {
  Cluster c(4, 1);
  EventLog log;
  c.net().set_tap(log.tap());
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, 10 * (i + 1));
  const auto r = run_max_protocol(c, c.all_ids(), 4);
  // Every counted message must have been tapped.
  EXPECT_EQ(log.size(), c.stats().total());
  EXPECT_EQ(log.count_direction(MsgDirection::kUpstream), r.reports);
  EXPECT_EQ(log.count_direction(MsgDirection::kBroadcast), r.beacons);
}

TEST(EventLog, TapSeesUpstreamSenderIds) {
  Cluster c(3, 2);
  EventLog log;
  c.net().set_tap(log.tap());
  Message m;
  m.kind = MsgKind::kValueReport;
  m.a = 42;
  c.net().node_send(2, m);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.events()[0].message.from, 2u);
}

}  // namespace
}  // namespace topkmon
