// The PR6 parallel-tick determinism contract: SimDriver with workers > 1
// partitions the node bitset words into per-worker ranges, stages every
// cross-shard side effect (sends, signals, armed-counter deltas, drain
// accounting) into per-thread buffers, and replays them in shard-major =
// ascending-node order at the tick barrier — so the run is byte-identical
// to workers = 1: same messages by direction and kind, same seq stamps
// (hence identical delivery schedules under jitter/drop), same monitor
// counters, same per-step answers, same error pattern. These tests pin
// that contract across native monitors, instant + scheduled networks,
// sparse + dense workloads and loops, and the uneven word-range edge
// cases (n not divisible by 64·W, W > words(n), empty shards).
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "sim/message.hpp"

namespace topkmon {
namespace {

using exp::Scenario;
using exp::run_scenario;

struct TickTrace {
  RunResult result;
  std::vector<std::vector<NodeId>> answers;
};

TickTrace run_workers(const std::string& monitor, const std::string& family,
                      const std::string& network, std::size_t workers,
                      std::size_t n = 24, bool dense = false) {
  Scenario sc;
  sc.monitor = monitor;
  sc.with_stream_family(family);
  sc.stream.walk.max_step = 5'000;
  sc.with_network(network);
  sc.n = n;
  sc.k = 5;
  sc.steps = 120;
  sc.seed = 77;
  sc.workers = workers;
  sc.dense_loop = dense;
  // Lossy / budgeted networks legitimately diverge from the ground truth;
  // the invariant under test is that every worker count diverges
  // identically.
  sc.validation = RunConfig::Validation::kWeak;
  sc.throw_on_error = false;
  TickTrace trace;
  sc.on_step = [&trace](TimeStep, const std::vector<Value>&,
                        const std::vector<NodeId>& answer) {
    trace.answers.push_back(answer);
  };
  trace.result = run_scenario(sc);
  return trace;
}

void expect_identical(const TickTrace& serial, const TickTrace& parallel,
                      std::size_t workers) {
  SCOPED_TRACE("workers=" + std::to_string(workers));

  // Messages: totals, directions, and every kind. A staged send replayed
  // out of serial order gets a different seq stamp, which perturbs the
  // jitter/drop hash and shifts these immediately.
  EXPECT_EQ(serial.result.comm.total(), parallel.result.comm.total());
  EXPECT_EQ(serial.result.comm.upstream(), parallel.result.comm.upstream());
  EXPECT_EQ(serial.result.comm.unicast(), parallel.result.comm.unicast());
  EXPECT_EQ(serial.result.comm.broadcast(), parallel.result.comm.broadcast());
  for (std::size_t k = 0; k < kNumMsgKinds; ++k) {
    EXPECT_EQ(serial.result.comm.by_kind(static_cast<MsgKind>(k)),
              parallel.result.comm.by_kind(static_cast<MsgKind>(k)))
        << msg_kind_name(static_cast<MsgKind>(k));
  }

  // Monitor counters (fed by the staged signal queue, replayed in shard
  // order = the serial raise order).
  EXPECT_EQ(serial.result.monitor.violation_steps,
            parallel.result.monitor.violation_steps);
  EXPECT_EQ(serial.result.monitor.violations,
            parallel.result.monitor.violations);
  EXPECT_EQ(serial.result.monitor.protocol_runs,
            parallel.result.monitor.protocol_runs);
  EXPECT_EQ(serial.result.monitor.filter_resets,
            parallel.result.monitor.filter_resets);
  EXPECT_EQ(serial.result.monitor.full_rebuilds,
            parallel.result.monitor.full_rebuilds);

  // Validation outcome and the answer itself, step by step.
  EXPECT_EQ(serial.result.error_steps, parallel.result.error_steps);
  EXPECT_EQ(serial.result.correct, parallel.result.correct);
  EXPECT_EQ(serial.result.first_error_step, parallel.result.first_error_step);
  ASSERT_EQ(serial.answers.size(), parallel.answers.size());
  for (std::size_t t = 0; t < serial.answers.size(); ++t) {
    EXPECT_EQ(serial.answers[t], parallel.answers[t]) << "step " << t;
  }
}

void expect_workers_equivalent(const std::string& monitor,
                               const std::string& family,
                               const std::string& network) {
  SCOPED_TRACE(monitor + " / " + family + " / " + network);
  const TickTrace serial = run_workers(monitor, family, network, 1);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    expect_identical(serial, run_workers(monitor, family, network, workers),
                     workers);
  }
}

const std::vector<std::string>& workloads() {
  // One quiet-capable family (activity interface + sparse observe) and
  // one dense stochastic family (previous-value compare path).
  static const std::vector<std::string> w{
      "sparse?rate=0.2,inner=random_walk", "random_walk"};
  return w;
}

TEST(ParallelTick, NativeMonitorsOnInstant) {
  for (const char* monitor : {"topk_filter", "topk_filter?nobeacon", "naive",
                              "naive_chg"}) {
    for (const std::string& family : workloads()) {
      expect_workers_equivalent(monitor, family, "instant");
    }
  }
}

TEST(ParallelTick, NativeMonitorsOnScheduledNetworks) {
  for (const char* monitor : {"topk_filter", "naive", "naive_chg"}) {
    for (const char* network :
         {"delay=2,jitter=1", "drop=0.1", "batch=2", "delay=1,drop=0.05",
          "delay=3,ticks=4", "delay=1,jitter=2,ticks=8"}) {
      for (const std::string& family : workloads()) {
        expect_workers_equivalent(monitor, family, network);
      }
    }
  }
}

TEST(ParallelTick, UnevenWordRanges) {
  // Word-aligned partitioning edge cases: n inside one word, n exactly a
  // word multiple, one straggler bit in the last word, n spanning three
  // words — each crossed with worker counts that leave shards short or
  // empty (W > words(n), W far beyond n).
  for (const std::size_t n : {std::size_t{5}, std::size_t{64}, std::size_t{65},
                              std::size_t{130}}) {
    for (const std::size_t workers :
         {std::size_t{2}, std::size_t{8}, std::size_t{33}}) {
      SCOPED_TRACE("n=" + std::to_string(n));
      const TickTrace serial =
          run_workers("topk_filter", "sparse?rate=0.2,inner=random_walk",
                      "delay=1,jitter=2,ticks=8", 1, n);
      expect_identical(
          serial,
          run_workers("topk_filter", "sparse?rate=0.2,inner=random_walk",
                      "delay=1,jitter=2,ticks=8", workers, n),
          workers);
    }
  }
}

TEST(ParallelTick, DenseLoopMatchesSerial) {
  // The legacy dense loop also shards: every node observes each tick, so
  // all shards are full — the maximal-staging stress case.
  for (const char* network : {"instant", "delay=2,jitter=1"}) {
    SCOPED_TRACE(network);
    const TickTrace serial = run_workers("topk_filter", "random_walk", network,
                                         1, 24, /*dense=*/true);
    expect_identical(serial,
                     run_workers("topk_filter", "random_walk", network, 8, 24,
                                 /*dense=*/true),
                     8);
  }
}

TEST(ParallelTick, WorkersZeroResolvesToHardwareConcurrency) {
  // workers = 0 means "all cores" (like --jobs 0); whatever it resolves
  // to must still match the serial run.
  const TickTrace serial =
      run_workers("topk_filter", "sparse?rate=0.2,inner=random_walk",
                  "delay=1,jitter=2,ticks=8", 1);
  expect_identical(serial,
                   run_workers("topk_filter",
                               "sparse?rate=0.2,inner=random_walk",
                               "delay=1,jitter=2,ticks=8", 0),
                   0);
}

TEST(ParallelTick, StrictValidationStaysExactOnInstant) {
  // Beyond mutual equivalence: on the instant network the parallel run
  // must also stay exactly correct against the ground truth.
  Scenario sc;
  sc.monitor = "topk_filter";
  sc.with_stream_family("sparse?rate=0.1,inner=random_walk");
  sc.stream.walk.max_step = 20'000;
  sc.n = 32;
  sc.k = 6;
  sc.steps = 250;
  sc.seed = 5;
  sc.workers = 8;
  sc.validation = RunConfig::Validation::kStrict;
  const RunResult r = run_scenario(sc);  // throws on divergence
  EXPECT_TRUE(r.correct);
}

TEST(ParallelTick, NonNativeMonitorRejectsWorkers) {
  // A LockstepAdapter monitor is one shared object; its node callbacks
  // cannot run concurrently, so run_scenario must reject the combination
  // up front instead of racing. `recompute` is the only remaining
  // adapter-backed monitor; the rest of the zoo runs native role ports.
  for (const char* monitor : {"recompute"}) {
    Scenario sc;
    sc.monitor = monitor;
    sc.n = 8;
    sc.k = 3;
    sc.steps = 10;
    sc.workers = 2;
    EXPECT_THROW(run_scenario(sc), std::invalid_argument) << monitor;
  }
}

}  // namespace
}  // namespace topkmon
