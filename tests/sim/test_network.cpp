// Unit tests for the star network with broadcast channel.
#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace topkmon {
namespace {

Message mk(MsgKind kind, std::int64_t a = 0, std::int64_t b = 0) {
  Message m;
  m.kind = kind;
  m.a = a;
  m.b = b;
  return m;
}

TEST(Network, RequiresStatsSink) {
  EXPECT_THROW(Network(4, nullptr), std::invalid_argument);
}

TEST(Network, NodeSendReachesCoordinator) {
  CommStats stats;
  Network net(4, &stats);
  net.node_send(2, mk(MsgKind::kValueReport, 99));
  ASSERT_TRUE(net.coordinator_has_mail());
  const auto inbox = net.drain_coordinator();
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].from, 2u);
  EXPECT_EQ(inbox[0].a, 99);
  EXPECT_FALSE(net.coordinator_has_mail());
  EXPECT_EQ(stats.upstream(), 1u);
}

TEST(Network, NodeSendStampsSender) {
  CommStats stats;
  Network net(4, &stats);
  Message m = mk(MsgKind::kValueReport, 1);
  m.from = 99;  // sender field must be overwritten with the true sender
  net.node_send(3, m);
  EXPECT_EQ(net.drain_coordinator()[0].from, 3u);
}

TEST(Network, RejectsBadIds) {
  CommStats stats;
  Network net(4, &stats);
  EXPECT_THROW(net.node_send(4, mk(MsgKind::kValueReport)), std::out_of_range);
  EXPECT_THROW(net.coord_unicast(7, mk(MsgKind::kProbe)), std::out_of_range);
  EXPECT_THROW(net.drain_node(100), std::out_of_range);
}

TEST(Network, UnicastReachesOnlyTarget) {
  CommStats stats;
  Network net(3, &stats);
  net.coord_unicast(1, mk(MsgKind::kProbe, 5));
  EXPECT_TRUE(net.drain_node(0).empty());
  const auto inbox = net.drain_node(1);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].a, 5);
  EXPECT_TRUE(net.drain_node(2).empty());
  EXPECT_EQ(stats.unicast(), 1u);
}

TEST(Network, BroadcastReachesEveryNodeOnce) {
  CommStats stats;
  Network net(3, &stats);
  net.coord_broadcast(mk(MsgKind::kRoundBeacon, 7));
  for (NodeId id = 0; id < 3; ++id) {
    const auto inbox = net.drain_node(id);
    ASSERT_EQ(inbox.size(), 1u) << "node " << id;
    EXPECT_EQ(inbox[0].a, 7);
  }
  // Draining again delivers nothing (cursor advanced).
  for (NodeId id = 0; id < 3; ++id) EXPECT_TRUE(net.drain_node(id).empty());
  EXPECT_EQ(stats.broadcast(), 1u);  // one message regardless of n
}

TEST(Network, BroadcastCostIndependentOfN) {
  CommStats stats;
  Network net(1'000, &stats);
  net.coord_broadcast(mk(MsgKind::kRoundBeacon));
  net.coord_broadcast(mk(MsgKind::kRoundBeacon));
  EXPECT_EQ(stats.total(), 2u);
}

TEST(Network, LateJoinerSeesAllBroadcastsSinceLastDrain) {
  CommStats stats;
  Network net(2, &stats);
  net.coord_broadcast(mk(MsgKind::kRoundBeacon, 1));
  net.coord_broadcast(mk(MsgKind::kRoundBeacon, 2));
  const auto inbox = net.drain_node(0);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0].a, 1);
  EXPECT_EQ(inbox[1].a, 2);
}

TEST(Network, UnicastAndBroadcastInterleaveBySendOrder) {
  CommStats stats;
  Network net(2, &stats);
  net.coord_unicast(0, mk(MsgKind::kProbe, 1));
  net.coord_broadcast(mk(MsgKind::kRoundBeacon, 2));
  net.coord_unicast(0, mk(MsgKind::kFilterAssign, 3));
  const auto inbox = net.drain_node(0);
  ASSERT_EQ(inbox.size(), 3u);
  EXPECT_EQ(inbox[0].a, 1);
  EXPECT_EQ(inbox[1].a, 2);
  EXPECT_EQ(inbox[2].a, 3);
}

TEST(Network, CoordinatorInboxPreservesArrivalOrder) {
  CommStats stats;
  Network net(3, &stats);
  net.node_send(2, mk(MsgKind::kValueReport, 20));
  net.node_send(0, mk(MsgKind::kValueReport, 0));
  net.node_send(1, mk(MsgKind::kValueReport, 10));
  const auto inbox = net.drain_coordinator();
  ASSERT_EQ(inbox.size(), 3u);
  EXPECT_EQ(inbox[0].from, 2u);
  EXPECT_EQ(inbox[1].from, 0u);
  EXPECT_EQ(inbox[2].from, 1u);
}

TEST(Network, BroadcastLogAccessible) {
  CommStats stats;
  Network net(1, &stats);
  net.coord_broadcast(mk(MsgKind::kRoundBeacon, 11));
  net.coord_broadcast(mk(MsgKind::kFilterUpdate, 22));
  EXPECT_EQ(net.broadcast_log_size(), 2u);
  const auto log = net.broadcast_log();
  EXPECT_EQ(log[0].a, 11);
  EXPECT_EQ(log[1].a, 22);
}

}  // namespace
}  // namespace topkmon
