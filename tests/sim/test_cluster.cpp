// Unit tests for the cluster (node runtimes + coordinator + network).
#include "sim/cluster.hpp"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

TEST(Cluster, SizeAndIds) {
  Cluster c(5, 1);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.runtime().size(), 5u);
  ASSERT_EQ(c.all_ids().size(), 5u);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(c.all_ids()[i], i);
  }
}

TEST(Cluster, RuntimeArraysAreParallelAndShared) {
  // The structure-of-arrays NodeRuntime is the single source of truth:
  // value accessors and the flat values() span alias the same array, and
  // the network's due-mail bits live in the same runtime.
  Cluster c(3, 1);
  c.set_value(1, 42);
  EXPECT_EQ(c.runtime().values[1], 42);
  EXPECT_EQ(c.values()[1], 42);
  EXPECT_EQ(c.values().size(), 3u);
  EXPECT_FALSE(c.runtime().due_mail.test(2));
  c.net().coord_unicast(2, Message{});
  EXPECT_TRUE(c.runtime().due_mail.test(2));
  EXPECT_TRUE(c.net().node_has_mail(2));
}

TEST(Cluster, ValuesReadWrite) {
  Cluster c(3, 1);
  c.set_value(0, 10);
  c.set_value(2, -7);
  EXPECT_EQ(c.value(0), 10);
  EXPECT_EQ(c.value(1), 0);
  EXPECT_EQ(c.value(2), -7);
}

TEST(Cluster, PerNodeRngsDifferAcrossNodes) {
  Cluster c(2, 7);
  const auto a = c.node_rng(0).next_u64();
  const auto b = c.node_rng(1).next_u64();
  EXPECT_NE(a, b);
}

TEST(Cluster, SameSeedSameRngStreams) {
  Cluster c1(4, 99);
  Cluster c2(4, 99);
  for (NodeId i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(c1.node_rng(i).next_u64(), c2.node_rng(i).next_u64());
    }
  }
  EXPECT_EQ(c1.coordinator_rng().next_u64(), c2.coordinator_rng().next_u64());
}

TEST(Cluster, DifferentSeedsDifferentStreams) {
  Cluster c1(1, 1);
  Cluster c2(1, 2);
  EXPECT_NE(c1.node_rng(0).next_u64(), c2.node_rng(0).next_u64());
}

TEST(Cluster, NetworkChargesOwnStats) {
  Cluster c(2, 1);
  Message m;
  m.kind = MsgKind::kValueReport;
  c.net().node_send(0, m);
  EXPECT_EQ(c.stats().total(), 1u);
  EXPECT_EQ(c.stats().upstream(), 1u);
}

TEST(Cluster, ProtocolEpochsMonotone) {
  Cluster c(1, 1);
  const auto e1 = c.next_protocol_epoch();
  const auto e2 = c.next_protocol_epoch();
  EXPECT_LT(e1, e2);
  EXPECT_EQ(c.current_protocol_epoch(), e2);
}

TEST(Cluster, BoundsChecked) {
  // value()/set_value() are unchecked hot-path accessors (debug assert
  // only); range validation for untrusted ids lives in node_rng() and in
  // the Network entry points.
  Cluster c(2, 1);
  EXPECT_THROW(c.node_rng(9), std::out_of_range);
  EXPECT_THROW(c.net().node_send(7, Message{}), std::out_of_range);
  EXPECT_THROW(c.net().coord_unicast(7, Message{}), std::out_of_range);
  EXPECT_THROW(c.net().drain_node(7), std::out_of_range);
}

}  // namespace
}  // namespace topkmon
