// Unit tests for message accounting.
#include "sim/comm_stats.hpp"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

TEST(CommStats, StartsAtZero) {
  CommStats s;
  EXPECT_EQ(s.total(), 0u);
  EXPECT_EQ(s.upstream(), 0u);
  EXPECT_EQ(s.unicast(), 0u);
  EXPECT_EQ(s.broadcast(), 0u);
}

TEST(CommStats, CountsByDirection) {
  CommStats s;
  s.record_upstream(MsgKind::kValueReport);
  s.record_upstream(MsgKind::kViolation);
  s.record_unicast(MsgKind::kProbe);
  s.record_broadcast(MsgKind::kRoundBeacon);
  s.record_broadcast(MsgKind::kFilterUpdate);
  s.record_broadcast(MsgKind::kRoundBeacon);
  EXPECT_EQ(s.upstream(), 2u);
  EXPECT_EQ(s.unicast(), 1u);
  EXPECT_EQ(s.broadcast(), 3u);
  EXPECT_EQ(s.total(), 6u);
}

TEST(CommStats, CountsByKind) {
  CommStats s;
  s.record_upstream(MsgKind::kValueReport);
  s.record_broadcast(MsgKind::kRoundBeacon);
  s.record_broadcast(MsgKind::kRoundBeacon);
  EXPECT_EQ(s.by_kind(MsgKind::kValueReport), 1u);
  EXPECT_EQ(s.by_kind(MsgKind::kRoundBeacon), 2u);
  EXPECT_EQ(s.by_kind(MsgKind::kFilterUpdate), 0u);
}

TEST(CommStats, WeightedTotal) {
  CommStats s;
  s.record_upstream(MsgKind::kValueReport);
  s.record_broadcast(MsgKind::kRoundBeacon);
  EXPECT_DOUBLE_EQ(s.weighted_total(1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.weighted_total(10.0), 11.0);
  EXPECT_DOUBLE_EQ(s.weighted_total(0.0), 1.0);
}

TEST(CommStats, SeriesDisabledByDefault) {
  CommStats s;
  s.begin_step(0);
  s.record_upstream(MsgKind::kValueReport);
  EXPECT_TRUE(s.series().empty());
}

TEST(CommStats, SeriesChargesCurrentStep) {
  CommStats s;
  s.enable_series();
  s.begin_step(0);
  s.record_upstream(MsgKind::kValueReport);
  s.record_broadcast(MsgKind::kRoundBeacon);
  s.begin_step(1);
  s.begin_step(2);
  s.record_unicast(MsgKind::kProbe);
  ASSERT_EQ(s.series().size(), 3u);
  EXPECT_EQ(s.series()[0], 2u);
  EXPECT_EQ(s.series()[1], 0u);
  EXPECT_EQ(s.series()[2], 1u);
}

TEST(CommStats, CumulativeSeries) {
  CommStats s;
  s.enable_series();
  s.begin_step(0);
  s.record_upstream(MsgKind::kValueReport);
  s.begin_step(1);
  s.record_upstream(MsgKind::kValueReport);
  s.record_upstream(MsgKind::kValueReport);
  const auto cum = s.cumulative_series();
  ASSERT_EQ(cum.size(), 2u);
  EXPECT_EQ(cum[0], 1u);
  EXPECT_EQ(cum[1], 3u);
}

TEST(CommStats, ResetClearsEverything) {
  CommStats s;
  s.enable_series();
  s.begin_step(0);
  s.record_upstream(MsgKind::kValueReport);
  s.reset();
  EXPECT_EQ(s.total(), 0u);
  EXPECT_EQ(s.by_kind(MsgKind::kValueReport), 0u);
  EXPECT_TRUE(s.series().empty());
}

TEST(CommStats, SummaryMentionsCounts) {
  CommStats s;
  s.record_upstream(MsgKind::kValueReport);
  s.record_broadcast(MsgKind::kRoundBeacon);
  const auto text = s.summary();
  EXPECT_NE(text.find("total=2"), std::string::npos);
  EXPECT_NE(text.find("bcast=1"), std::string::npos);
}

TEST(MsgKindName, AllKindsNamed) {
  for (std::size_t i = 0; i < kNumMsgKinds; ++i) {
    EXPECT_NE(msg_kind_name(static_cast<MsgKind>(i)), "?");
  }
}

}  // namespace
}  // namespace topkmon
