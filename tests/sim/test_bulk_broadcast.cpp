// The bulk instant-broadcast fan-out (node_mail_is_broadcast_only /
// unread_broadcasts / ack_broadcasts) must be observably identical to
// per-node drain_node calls: same messages in the same order, same
// pending-delivery accounting, same due bits — including around log
// compaction with straggler nodes that have not drained for thousands of
// broadcasts.
#include <gtest/gtest.h>

#include <vector>

#include "sim/network.hpp"
#include "sim/network_model.hpp"
#include "sim/node_runtime.hpp"

namespace topkmon {
namespace {

Message msg(MsgKind kind, std::int64_t a) {
  Message m;
  m.kind = kind;
  m.a = a;
  return m;
}

/// Drains node `id` the way the SimDriver's phase-1 fast path does: the
/// in-place log suffix when the node is clean, drain_node otherwise.
std::vector<Message> bulk_or_drain(Network& net, NodeId id) {
  if (net.node_mail_is_broadcast_only(id)) {
    const auto suffix = net.unread_broadcasts(id);
    std::vector<Message> out(suffix.begin(), suffix.end());
    net.ack_broadcasts(id);
    return out;
  }
  return net.drain_node(id);
}

void expect_same(const std::vector<Message>& got,
                 const std::vector<Message>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].kind, want[i].kind) << "at " << i;
    EXPECT_EQ(got[i].a, want[i].a) << "at " << i;
  }
}

TEST(BulkBroadcast, EquivalentToDrainUnderMixedCleanDirtyNodes) {
  constexpr std::size_t kN = 5;
  CommStats stats_a;
  CommStats stats_b;
  Network bulk(kN, &stats_a);
  Network drain(kN, &stats_b);

  std::int64_t payload = 0;
  for (int round = 0; round < 6; ++round) {
    // Broadcasts interleaved with unicasts: nodes 1 and 3 become dirty
    // (unicasts pending), the rest stay broadcast-only.
    for (Network* net : {&bulk, &drain}) {
      net->coord_broadcast(msg(MsgKind::kRoundBeacon, payload));
      net->coord_unicast(1, msg(MsgKind::kFilterAssign, payload + 1));
      net->coord_broadcast(msg(MsgKind::kFilterUpdate, payload + 2));
      if (round % 2 == 0) {
        net->coord_unicast(3, msg(MsgKind::kProbe, payload + 3));
      }
    }
    payload += 10;

    for (NodeId id = 0; id < kN; ++id) {
      const bool clean = id != 1 && !(round % 2 == 0 && id == 3);
      EXPECT_EQ(bulk.node_mail_is_broadcast_only(id), clean)
          << "round " << round << " node " << id;
      const auto want = drain.drain_node(id);
      const auto got = bulk_or_drain(bulk, id);
      expect_same(got, want);
      EXPECT_FALSE(bulk.node_has_mail(id));
    }
    EXPECT_EQ(bulk.pending_deliveries(), drain.pending_deliveries());
  }
}

TEST(BulkBroadcast, AckSettlesAccountingAndDueBits) {
  CommStats stats;
  Network net(3, &stats);
  net.coord_broadcast(msg(MsgKind::kRoundBeacon, 1));
  net.coord_broadcast(msg(MsgKind::kRoundBeacon, 2));
  EXPECT_EQ(net.pending_deliveries(), 6u);  // 2 broadcasts x 3 nodes

  ASSERT_TRUE(net.node_mail_is_broadcast_only(0));
  EXPECT_EQ(net.unread_broadcasts(0).size(), 2u);
  net.ack_broadcasts(0);
  EXPECT_EQ(net.pending_deliveries(), 4u);
  EXPECT_FALSE(net.node_has_mail(0));
  EXPECT_TRUE(net.unread_broadcasts(0).empty());
  // An ack is idempotent for accounting: nothing unread, nothing to undo.
  net.ack_broadcasts(0);
  EXPECT_EQ(net.pending_deliveries(), 4u);

  // The other nodes' suffixes are untouched.
  EXPECT_EQ(net.unread_broadcasts(1).size(), 2u);
  EXPECT_EQ(net.unread_broadcasts(1)[0].a, 1);
  EXPECT_EQ(net.unread_broadcasts(1)[1].a, 2);
}

TEST(BulkBroadcast, StragglerJoiningMidCompaction) {
  // Node 2 never drains while the log grows past the compaction
  // threshold; its cursor pins the prefix, so bulk readers keep getting
  // exact suffixes and the straggler eventually reads every message.
  constexpr std::size_t kBroadcasts = 5000;  // > compaction threshold (4096)
  CommStats stats;
  Network net(3, &stats);

  std::size_t read_by_0 = 0;
  for (std::size_t i = 0; i < kBroadcasts; ++i) {
    net.coord_broadcast(
        msg(MsgKind::kRoundBeacon, static_cast<std::int64_t>(i)));
    // Nodes 0 and 1 keep up via the bulk path; the post-pass compaction
    // runs every round exactly like a driver tick would run it.
    for (NodeId id = 0; id < 2; ++id) {
      const auto suffix = net.unread_broadcasts(id);
      if (id == 0) {
        ASSERT_EQ(suffix.size(), 1u);
        EXPECT_EQ(suffix[0].a, static_cast<std::int64_t>(i));
        ++read_by_0;
      }
      net.ack_broadcasts(id);
    }
    net.compact_broadcast_log();
  }
  EXPECT_EQ(read_by_0, kBroadcasts);

  // The straggler's cursor blocked compaction: every message is retained
  // and its suffix replays the full history in issue order.
  EXPECT_EQ(net.broadcast_log_size(), kBroadcasts);
  ASSERT_TRUE(net.node_mail_is_broadcast_only(2));
  const auto suffix = net.unread_broadcasts(2);
  ASSERT_EQ(suffix.size(), kBroadcasts);
  for (std::size_t i = 0; i < kBroadcasts; ++i) {
    ASSERT_EQ(suffix[i].a, static_cast<std::int64_t>(i)) << "at " << i;
  }
  net.ack_broadcasts(2);
  EXPECT_EQ(net.pending_deliveries(), 0u);

  // With every cursor at the end the deferred compaction reclaims the
  // log; the issue counter keeps counting and new broadcasts deliver
  // exact one-element suffixes to everyone.
  net.compact_broadcast_log();
  EXPECT_EQ(net.broadcast_log_size(), kBroadcasts);
  EXPECT_TRUE(net.broadcast_log().empty());
  net.coord_broadcast(msg(MsgKind::kWinnerAnnounce, 77));
  for (NodeId id = 0; id < 3; ++id) {
    const auto s = net.unread_broadcasts(id);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0].a, 77);
    net.ack_broadcasts(id);
  }
}

TEST(BulkBroadcast, ScheduledPoliciesNeverQualify) {
  NetworkSpec spec;
  spec.delay = 1;
  CommStats stats;
  Network net(2, &stats, spec, 7);
  net.coord_broadcast(msg(MsgKind::kRoundBeacon, 1));
  net.advance_clock_to(5);
  ASSERT_TRUE(net.node_has_mail(0));
  // The bulk fast path is an instant-mode optimization only; scheduled
  // deliveries always go through drain_node.
  EXPECT_FALSE(net.node_mail_is_broadcast_only(0));
  EXPECT_EQ(net.drain_node(0).size(), 1u);
}

TEST(BulkBroadcast, SharedRuntimeDueMailFollowsBulkAcks) {
  // When the network is built over a NodeRuntime, acks clear the shared
  // due-mail bits the SimDriver scans.
  NodeRuntime rt(2);
  CommStats stats;
  Network net(2, &stats, NetworkSpec{}, 0, &rt);
  net.coord_broadcast(msg(MsgKind::kRoundBeacon, 9));
  EXPECT_TRUE(rt.due_mail.test(0));
  EXPECT_TRUE(rt.due_mail.test(1));
  net.ack_broadcasts(0);
  EXPECT_FALSE(rt.due_mail.test(0));
  EXPECT_TRUE(rt.due_mail.test(1));
}

}  // namespace
}  // namespace topkmon
