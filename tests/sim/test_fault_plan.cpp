// Fault-injection subsystem tests (sim/fault_plan.hpp + the SimDriver /
// scenario plumbing): spec grammar and timeline validation with
// did-you-mean hints, property/fuzz coverage of the grammar (random valid
// timelines validate; spec_name round-trips; malformed specs hint),
// schedule determinism (same seed => same victims, byte-identical across
// worker counts), crash/recover/join/leave/k end-to-end on every native
// monitor, churn composed with the e15 drop ladder, the sharded churn
// contract (per-shard plan carving, whole-shard outage quota drain,
// degradations rejected), and the RunResult error/recovery accounting the
// churn suite reports.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/root_merge.hpp"
#include "exp/scenario.hpp"
#include "sim/fault_plan.hpp"

namespace topkmon {
namespace {

using exp::Scenario;
using exp::run_scenario;

// ---------------------------------------------------------------------------
// Grammar and timeline validation
// ---------------------------------------------------------------------------

TEST(FaultPlanSpec, NoneAndEmptyAreEmptyPlans) {
  for (const char* spec : {"none", ""}) {
    const FaultPlan plan(spec, 8, 2, 1);
    EXPECT_TRUE(plan.empty());
    EXPECT_FALSE(plan.has_churn());
    EXPECT_EQ(plan.initial_nodes(), 8u);
    EXPECT_EQ(plan.total_nodes(), 8u);
  }
}

TEST(FaultPlanSpec, ExplicitEventsSortedAndProvisioned) {
  const FaultPlan plan(
      "churn?crash=3@50,recover=3@90,join=+16@120,leave=1@200,k=4@250", 8, 2,
      1);
  ASSERT_EQ(plan.events().size(), 5u);
  EXPECT_TRUE(plan.has_churn());
  EXPECT_EQ(plan.total_nodes(), 24u);  // 8 initial + 16 joining
  TimeStep prev = 0;
  for (const FaultEvent& ev : plan.events()) {
    EXPECT_GE(ev.step, prev);
    prev = ev.step;
  }
  EXPECT_EQ(plan.events().back().kind, FaultEvent::Kind::kSetK);
  EXPECT_EQ(plan.events().back().count, 4u);
}

TEST(FaultPlanSpec, KOnlyPlanHasNoChurn) {
  const FaultPlan plan("churn?k=4@100,k=2@200", 8, 2, 1);
  EXPECT_FALSE(plan.has_churn());
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanSpec, RejectsMalformedSpecs) {
  // Unknown plan name, with a hint.
  try {
    FaultPlan("churm?crash=1@10", 8, 2, 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("churn"), std::string::npos);
  }
  // Unknown key, with a hint.
  try {
    FaultPlan("churn?crsh=1@10", 8, 2, 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("crash"), std::string::npos);
  }
  // Timeline violations.
  EXPECT_THROW(FaultPlan("churn?crash=99@10", 8, 2, 1),
               std::invalid_argument);  // id out of range
  EXPECT_THROW(FaultPlan("churn?crash=1@10,crash=1@20", 8, 2, 1),
               std::invalid_argument);  // crash of a down node
  EXPECT_THROW(FaultPlan("churn?recover=1@10", 8, 2, 1),
               std::invalid_argument);  // recovery of a live node
  EXPECT_THROW(FaultPlan("churn?crash=1@10,leave=1@20", 8, 2, 1),
               std::invalid_argument);  // leave while down
  EXPECT_THROW(FaultPlan("churn?k=9@10", 8, 2, 1),
               std::invalid_argument);  // k > live nodes
  EXPECT_THROW(FaultPlan("none?x=1", 8, 2, 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan("churn?crash=1@0", 8, 2, 1),
               std::invalid_argument);  // step 0 is initialization
  // Generated and explicit forms cannot mix.
  EXPECT_THROW(FaultPlan("churn?every=10,down=1,count=2,outage=5,crash=1@7",
                         8, 2, 1),
               std::invalid_argument);
}

TEST(FaultPlanSpec, GeneratedChurnIsSeedDeterministic) {
  const char* spec = "churn?every=50,down=3,count=4,outage=20";
  const FaultPlan a(spec, 64, 8, 7);
  const FaultPlan b(spec, 64, 8, 7);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].step, b.events()[i].step);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
  }
  // A different seed draws different victims (4 bursts x 3 victims out of
  // 64 nodes: collision of the full sequence is practically impossible).
  const FaultPlan c(spec, 64, 8, 8);
  ASSERT_EQ(a.events().size(), c.events().size());
  bool any_differs = false;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    if (a.events()[i].node != c.events()[i].node) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

// ---------------------------------------------------------------------------
// Property / fuzz coverage of the grammar
// ---------------------------------------------------------------------------

namespace fuzz {

struct Timeline {
  std::string spec = "churn?";
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t events = 0;
};

/// Generates a random *valid* timeline: every emitted event is legal in
/// the membership/degradation state the previous events left behind, so
/// the plan must construct (any throw is a validator bug).
Timeline random_timeline(std::mt19937_64& rng) {
  Timeline tl;
  tl.n = 4 + rng() % 29;                          // 4..32 initial nodes
  tl.k = 1 + rng() % std::min<std::size_t>(tl.n, 8);
  enum : char { kUp, kDown, kGone };
  std::vector<char> state(tl.n, kUp);
  std::vector<char> degraded(tl.n, 0);
  std::size_t live = tl.n;
  std::size_t cur_k = tl.k;  // the validator holds live >= k at all times
  TimeStep step = 1;
  const std::size_t want = 1 + rng() % 12;
  bool first = true;
  const auto emit = [&](const std::string& item) {
    if (!first) tl.spec += ',';
    first = false;
    tl.spec += item;
    ++tl.events;
  };
  const auto pick = [&](const auto& eligible) -> std::size_t {
    std::vector<std::size_t> ids;
    for (std::size_t id = 0; id < state.size(); ++id) {
      if (eligible(id)) ids.push_back(id);
    }
    return ids.empty() ? state.size() : ids[rng() % ids.size()];
  };
  for (std::size_t e = 0; e < want; ++e) {
    step += static_cast<TimeStep>(rng() % 40);
    const std::string at = "@" + std::to_string(step);
    switch (rng() % 8) {
      case 0: {  // crash a live node (also clears its degradation)
        if (live <= cur_k) break;
        const std::size_t id = pick([&](std::size_t i) {
          return state[i] == kUp;
        });
        if (id == state.size()) break;
        state[id] = kDown;
        degraded[id] = 0;
        --live;
        emit("crash=" + std::to_string(id) + at);
        break;
      }
      case 1: {  // recover a crashed node
        const std::size_t id = pick([&](std::size_t i) {
          return state[i] == kDown;
        });
        if (id == state.size()) break;
        state[id] = kUp;
        ++live;
        emit("recover=" + std::to_string(id) + at);
        break;
      }
      case 2: {  // permanent leave of a live node
        if (live <= cur_k) break;
        const std::size_t id = pick([&](std::size_t i) {
          return state[i] == kUp;
        });
        if (id == state.size()) break;
        state[id] = kGone;
        degraded[id] = 0;
        --live;
        emit("leave=" + std::to_string(id) + at);
        break;
      }
      case 3: {  // join a fresh block
        const std::size_t count = 1 + rng() % 4;
        state.insert(state.end(), count, kUp);
        degraded.insert(degraded.end(), count, 0);
        live += count;
        emit("join=+" + std::to_string(count) + at);
        break;
      }
      case 4: {  // dynamic k within the live count
        cur_k = 1 + rng() % live;
        emit("k=" + std::to_string(cur_k) + at);
        break;
      }
      case 5: {  // degrade a clean live node
        const std::size_t id = pick([&](std::size_t i) {
          return state[i] == kUp && degraded[i] == 0;
        });
        if (id == state.size()) break;
        degraded[id] = 1;
        const std::size_t mode = rng() % 3;
        if (mode == 0) {
          emit("lag=" + std::to_string(id) + at + ":" +
               std::to_string(1 + rng() % 50));
        } else {
          emit((mode == 1 ? "stale=" : "mute=") + std::to_string(id) + at);
        }
        break;
      }
      default: {  // heal an actively degraded node
        const std::size_t id = pick([&](std::size_t i) {
          return degraded[i] != 0;
        });
        if (id == state.size()) break;
        degraded[id] = 0;
        emit("heal=" + std::to_string(id) + at);
        break;
      }
    }
  }
  if (tl.events == 0) {
    // Always-legal fallback so the plan is never empty: re-assert k.
    emit("k=" + std::to_string(cur_k) + "@" + std::to_string(step));
  }
  return tl;
}

}  // namespace fuzz

TEST(FaultPlanSpec, FuzzRandomValidTimelinesValidate) {
  std::mt19937_64 rng(0xF00DF00Dull);
  for (int iter = 0; iter < 300; ++iter) {
    const fuzz::Timeline tl = fuzz::random_timeline(rng);
    SCOPED_TRACE(tl.spec);
    const FaultPlan plan(tl.spec, tl.n, tl.k, /*seed=*/iter);
    EXPECT_EQ(plan.events().size(), tl.events);
    EXPECT_EQ(plan.initial_nodes(), tl.n);
  }
}

TEST(FaultPlanSpec, FuzzSpecNameRoundTripsToIdenticalPlan) {
  std::mt19937_64 rng(0xCAFEF00Dull);
  for (int iter = 0; iter < 300; ++iter) {
    const fuzz::Timeline tl = fuzz::random_timeline(rng);
    SCOPED_TRACE(tl.spec);
    const FaultPlan a(tl.spec, tl.n, tl.k, /*seed=*/iter);
    const FaultPlan b(a.spec_name(), tl.n, tl.k, /*seed=*/iter);
    EXPECT_EQ(a.spec_name(), b.spec_name());
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
      EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
      EXPECT_EQ(a.events()[i].step, b.events()[i].step);
      EXPECT_EQ(a.events()[i].node, b.events()[i].node);
      EXPECT_EQ(a.events()[i].count, b.events()[i].count);
    }
    EXPECT_EQ(a.total_nodes(), b.total_nodes());
    EXPECT_EQ(a.has_churn(), b.has_churn());
    EXPECT_EQ(a.has_degradation(), b.has_degradation());
  }
}

TEST(FaultPlanSpec, GeneratedChurnSpecNameRoundTrips) {
  // The generated form expands to explicit events; spec_name must emit
  // that expansion, and reparsing it must reproduce the events for any
  // seed (the canonical form carries no seed dependence).
  const FaultPlan a("churn?every=50,down=3,count=4,outage=20,k=12@170", 64, 8,
                    9);
  const FaultPlan b(a.spec_name(), 64, 8, /*seed=*/12345);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].step, b.events()[i].step);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
  }
}

TEST(FaultPlanSpec, FuzzMutatedKeysHintTheIntendedKey) {
  // Drop one character from a known key: the error must carry the
  // intended key as a did-you-mean hint.
  const struct {
    const char* spec;
    const char* hint;
  } cases[] = {
      {"churn?crsh=1@10", "crash"},     {"churn?recver=1@10", "recover"},
      {"churn?lav=1@10:5", "lag"},      {"churn?stal=1@10", "stale"},
      {"churn?mut=1@10", "mute"},       {"churn?hea=1@10", "heal"},
      {"churn?leae=1@10", "leave"},     {"churn?jin=+4@10", "join"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.spec);
    try {
      FaultPlan(c.spec, 8, 2, 1);
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.hint), std::string::npos)
          << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end churn runs
// ---------------------------------------------------------------------------

Scenario churn_scenario(const std::string& monitor, const std::string& network,
                        const std::string& plan, std::size_t n = 48,
                        std::size_t k = 6) {
  Scenario sc;
  sc.monitor = monitor;
  sc.with_stream_family("random_walk");
  sc.stream.walk.hi = 50'000'000;
  sc.stream.walk.max_step = 200;
  sc.with_network(network);
  sc.n = n;
  sc.k = k;
  sc.steps = 300;
  sc.seed = 11;
  sc.faults = plan;
  sc.validation = RunConfig::Validation::kStrict;
  sc.throw_on_error = false;
  return sc;
}

const char* kMixedPlan =
    "churn?crash=5@40,recover=5@80,join=+16@120,leave=2@160,k=10@200,"
    "crash=20@230,recover=20@250";

TEST(FaultInjection, EveryNativeMonitorSurvivesMixedChurnOnInstant) {
  for (const char* mon : {"topk_filter?nobeacon", "naive", "naive_chg"}) {
    SCOPED_TRACE(mon);
    const RunResult r = run_scenario(churn_scenario(mon, "instant",
                                                    kMixedPlan));
    // The monitor must have fully re-converged after the last event; on
    // instant delivery the tail is error-free outright.
    EXPECT_EQ(r.error_steps_since(270), 0u);
    // Recoveries and the join fired the re-sync handshake.
    EXPECT_EQ(r.monitor.resyncs, 18u);  // 2 recoveries + 16 joiners
    // One recovery window per applied event, all bounded (instant repair
    // completes within the event's own step).
    EXPECT_EQ(r.recovery_ticks.size(), 7u);
    EXPECT_LE(r.max_recovery_ticks(), 5'000u);
  }
}

TEST(FaultInjection, ErrorAccountingIsConsistent) {
  const RunResult r = run_scenario(
      churn_scenario("topk_filter?nobeacon", "drop=0.1", kMixedPlan));
  EXPECT_EQ(r.error_step_list.size(), r.error_steps);
  EXPECT_EQ(r.error_steps_since(0), r.error_steps);
  EXPECT_EQ(r.error_steps_since(r.config.steps + 1), 0u);
  TimeStep prev = 0;
  for (const TimeStep t : r.error_step_list) {
    EXPECT_GE(t, prev);  // ascending (lower_bound contract)
    prev = t;
  }
}

TEST(FaultInjection, CrashDuringExtremumSelection) {
  // k close to n: every FILTERRESET selection involves most live nodes, so
  // crashing nodes mid-run reliably hits in-flight selections (winner or
  // participant), exercising the structural-repair path. A volatile walk
  // keeps resets frequent. k = 10 is the ceiling the plan validator
  // allows: each burst takes 2 of the 12 nodes down.
  Scenario sc = churn_scenario("topk_filter", "instant",
                               "churn?every=20,down=2,count=6,outage=8", 12,
                               10);
  sc.stream.walk.max_step = 5'000'000;
  const RunResult r = run_scenario(sc);
  EXPECT_EQ(r.error_steps_since(200), 0u);
  EXPECT_GT(r.monitor.resyncs, 0u);
}

TEST(FaultInjection, RecoverDuringRenegotiationAndDynamicK) {
  // Recovery and a k change on the same step: the re-sync handshake must
  // survive the reset storm the rekey triggers.
  const char* plan = "churn?crash=3@50,recover=3@100,k=9@100,k=2@180";
  for (const char* mon : {"topk_filter?nobeacon", "naive_chg"}) {
    SCOPED_TRACE(mon);
    const RunResult r = run_scenario(churn_scenario(mon, "instant", plan, 24,
                                                    4));
    EXPECT_EQ(r.error_steps_since(250), 0u);
    EXPECT_EQ(r.monitor.resyncs, 1u);
  }
}

TEST(FaultInjection, JoinBlockExtendsIdRange) {
  // Joining ids live in [n, total_nodes); the answer may contain them
  // after the join step.
  Scenario sc = churn_scenario("naive", "instant", "churn?join=+8@50", 16, 12);
  bool saw_joiner = false;
  sc.on_step = [&](TimeStep t, const std::vector<Value>&,
                   const std::vector<NodeId>& answer) {
    for (const NodeId id : answer) {
      ASSERT_LT(id, 24u);
      if (t < 50) {
        ASSERT_LT(id, 16u) << "joiner answered before its join";
      }
      if (id >= 16) saw_joiner = true;
    }
  };
  const RunResult r = run_scenario(sc);
  EXPECT_EQ(r.error_steps, 0u);
  // 12 of 24 slots: with 8 fresh random walkers, some joiner reaches the
  // top-12 over 250 steps (the ground truth would flag it if the monitor
  // missed it; this asserts the scenario actually exercised the case).
  EXPECT_TRUE(saw_joiner);
}

TEST(FaultInjection, ChurnComposedWithDropLadder) {
  // The e15 drop ladder under generated churn: the run must complete with
  // consistent accounting at every rate, and stay exact at rate 0.
  for (const double rate : {0.002, 0.01, 0.05, 0.2}) {
    SCOPED_TRACE(rate);
    Scenario sc = churn_scenario("topk_filter?nobeacon,backoff",
                                 "drop=" + std::to_string(rate),
                                 "churn?every=60,down=3,count=3,outage=25");
    sc.validation = RunConfig::Validation::kWeak;
    const RunResult r = run_scenario(sc);
    EXPECT_EQ(r.steps_executed, 301u);
    EXPECT_EQ(r.error_step_list.size(), r.error_steps);
    EXPECT_EQ(r.monitor.resyncs, 9u);
  }
}

// ---------------------------------------------------------------------------
// Determinism contracts
// ---------------------------------------------------------------------------

TEST(FaultInjection, ByteIdenticalAcrossWorkerCounts) {
  for (const char* net : {"instant", "jitter=2", "drop=0.05"}) {
    SCOPED_TRACE(net);
    std::vector<std::vector<NodeId>> answers[3];
    RunResult results[3];
    const std::size_t workers[3] = {1, 3, 8};
    for (int i = 0; i < 3; ++i) {
      Scenario sc = churn_scenario("topk_filter?nobeacon", net, kMixedPlan);
      sc.workers = workers[i];
      sc.validation = RunConfig::Validation::kWeak;
      sc.on_step = [&answers, i](TimeStep, const std::vector<Value>&,
                                 const std::vector<NodeId>& answer) {
        answers[i].push_back(answer);
      };
      results[i] = run_scenario(sc);
    }
    for (int i = 1; i < 3; ++i) {
      EXPECT_EQ(results[0].comm.total(), results[i].comm.total());
      EXPECT_EQ(results[0].error_steps, results[i].error_steps);
      EXPECT_EQ(results[0].error_step_list, results[i].error_step_list);
      EXPECT_EQ(results[0].recovery_ticks, results[i].recovery_ticks);
      EXPECT_EQ(results[0].monitor.resyncs, results[i].monitor.resyncs);
      EXPECT_EQ(results[0].monitor.resync_retries,
                results[i].monitor.resync_retries);
      EXPECT_EQ(answers[0], answers[i]);
    }
  }
}

TEST(FaultInjection, RepeatedRunsAreIdentical) {
  const Scenario sc = churn_scenario("naive_chg", "jitter=3", kMixedPlan);
  const RunResult a = run_scenario(sc);
  const RunResult b = run_scenario(sc);
  EXPECT_EQ(a.comm.total(), b.comm.total());
  EXPECT_EQ(a.error_step_list, b.error_step_list);
  EXPECT_EQ(a.recovery_ticks, b.recovery_ticks);
}

TEST(FaultInjection, NoFaultRunIsByteIdenticalToDefault) {
  // faults = "none" / "" must leave every allocation and RNG stream
  // untouched: identical messages by kind, identical answers.
  Scenario base = churn_scenario("topk_filter", "jitter=2", "none");
  Scenario empty = base;
  empty.faults = "";
  const RunResult a = run_scenario(base);
  const RunResult b = run_scenario(empty);
  EXPECT_EQ(a.comm.total(), b.comm.total());
  EXPECT_EQ(a.comm.upstream(), b.comm.upstream());
  EXPECT_EQ(a.error_steps, b.error_steps);
  EXPECT_TRUE(a.recovery_ticks.empty());
  EXPECT_TRUE(b.recovery_ticks.empty());
}

TEST(FaultInjection, NonNativeMonitorRejected) {
  // `recompute` is the last adapter-backed monitor (the other zoo members
  // all have native role ports now); it must still be rejected.
  Scenario sc = churn_scenario("recompute", "instant", "churn?crash=1@10");
  EXPECT_THROW(run_scenario(sc), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sharded deployments: churn and k plans (degradations rejected)
// ---------------------------------------------------------------------------

TEST(FaultInjection, ShardedRejectsDegradationsAcceptsDynamicK) {
  Scenario sc = churn_scenario("topk_filter?nobeacon", "instant",
                               "churn?mute=1@10,heal=1@30", 64, 8);
  sc.shards = 4;
  EXPECT_THROW(run_scenario(sc), std::invalid_argument);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(shards);
    for (const char* mon : {"topk_filter?nobeacon", "naive_chg"}) {
      SCOPED_TRACE(mon);
      Scenario ks = churn_scenario(mon, "instant", "churn?k=20@80,k=4@180",
                                   64, 8);
      ks.shards = shards;
      const RunResult r = run_scenario(ks);
      // Quota renegotiation keeps the merged answer exact on instant
      // delivery: no divergence at any step, at either shard count.
      EXPECT_EQ(r.error_steps, 0u);
    }
  }
}

TEST(FaultInjection, ShardedMixedChurnReachesExactTail) {
  // The full membership-churn grammar at c in {2, 4}: crashes, a
  // recovery, a join block (which lands entirely in shards provisioned as
  // join reserve), a leave and a dynamic k. The deployment carves the
  // plan into per-shard schedules; the tail must be exact after the last
  // event re-converges, with every recovery window bounded.
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE(shards);
    for (const char* mon : {"topk_filter?nobeacon", "naive", "naive_chg"}) {
      SCOPED_TRACE(mon);
      Scenario sc = churn_scenario(mon, "instant", kMixedPlan);
      sc.shards = shards;
      const RunResult r = run_scenario(sc);
      EXPECT_EQ(r.error_steps_since(270), 0u);
      EXPECT_EQ(r.recovery_ticks.size(), 7u);
      EXPECT_LE(r.max_recovery_ticks(), 50'000u);
    }
  }
}

TEST(FaultInjection, ShardedWholeShardOutageDrainsQuotaAndRecovers) {
  // n = 64, c = 4: shard 0 owns ids [0, 16). Crashing all of it at step
  // 40 leaves its quota unfillable; the under-fill report (U_s = -inf)
  // makes the root drain the quota to the live shards. Exactness on the
  // outage plateau proves the drain happened — a shard holding quota it
  // cannot fill would leave the union short of k and fail strict
  // validation every step. Recovery at 160 regrants via the resync ->
  // violation -> crossing chain.
  std::string plan = "churn?";
  for (int id = 0; id < 16; ++id) {
    plan += "crash=" + std::to_string(id) + "@40,";
  }
  for (int id = 0; id < 16; ++id) {
    plan += "recover=" + std::to_string(id) + "@160,";
  }
  plan.pop_back();
  for (const char* mon : {"topk_filter?nobeacon", "naive"}) {
    SCOPED_TRACE(mon);
    Scenario sc = churn_scenario(mon, "instant", plan, 64, 8);
    sc.shards = 4;
    const RunResult r = run_scenario(sc);
    // Exact on the outage plateau (quota fully drained)...
    EXPECT_EQ(r.error_steps_since(100), r.error_steps_since(160));
    // ...and exact again after the recovery renegotiation settles.
    EXPECT_EQ(r.error_steps_since(250), 0u);
    EXPECT_LE(r.max_recovery_ticks(), 50'000u);
  }
}

TEST(FaultInjection, ShardedChurnIsWorkerCountInvariant) {
  // Churn events fire inside the per-shard drivers; whole-shard stepping
  // on pool threads must not perturb a single message, error step or
  // recovery window.
  Scenario sc = churn_scenario("topk_filter?nobeacon", "instant", kMixedPlan);
  sc.shards = 4;
  sc.workers = 1;
  const RunResult a = run_scenario(sc);
  sc.workers = 8;
  const RunResult b = run_scenario(sc);
  EXPECT_EQ(a.comm.total(), b.comm.total());
  EXPECT_EQ(a.root_comm.total(), b.root_comm.total());
  EXPECT_EQ(a.error_step_list, b.error_step_list);
  EXPECT_EQ(a.recovery_ticks, b.recovery_ticks);
  EXPECT_EQ(a.monitor.resyncs, b.monitor.resyncs);
}

TEST(FaultInjection, ShardedSetKValidatesRange) {
  ShardedSpec spec;
  spec.n = 16;
  spec.k = 4;
  spec.shards = 2;
  spec.seed = 3;
  ShardedDeployment dep(spec);
  for (NodeId id = 0; id < 16; ++id) {
    dep.set_value(id, static_cast<Value>(id + 1));
  }
  dep.initialize();
  EXPECT_THROW(dep.set_k(0), std::invalid_argument);
  EXPECT_THROW(dep.set_k(17), std::invalid_argument);
}

}  // namespace
}  // namespace topkmon
