// Differential fuzzing: random trace matrices (including ties, negatives
// and discontinuities) drive every monitor; answers are checked against
// the omniscient ground truth with the appropriate validity notion.
// Also cross-validates the offline optimum's feasibility invariants on
// the same fuzzed traces.
#include <gtest/gtest.h>

#include <memory>

#include "core/approx_monitor.hpp"
#include "core/dominance_monitor.hpp"
#include "core/ground_truth.hpp"
#include "core/multik_monitor.hpp"
#include "core/naive_monitor.hpp"
#include "core/offline_opt.hpp"
#include "core/ordered_topk_monitor.hpp"
#include "core/recompute_monitor.hpp"
#include "core/runner.hpp"
#include "core/slack_monitor.hpp"
#include "core/topk_monitor.hpp"
#include "streams/trace.hpp"

namespace topkmon {
namespace {

/// Random trace with occasional big jumps and deliberate tie pressure
/// (values snapped to a coarse grid with probability 1/2).
TraceMatrix fuzz_trace(std::size_t n, std::size_t steps, Rng& rng,
                       bool force_distinct) {
  TraceMatrix trace(n, steps);
  std::vector<Value> current(n);
  for (auto& v : current) v = rng.uniform_int(-1'000, 1'000);
  for (std::size_t t = 0; t < steps; ++t) {
    for (NodeId i = 0; i < n; ++i) {
      const double roll = rng.next_double();
      if (roll < 0.05) {
        current[i] = rng.uniform_int(-100'000, 100'000);  // discontinuity
      } else if (roll < 0.75) {
        current[i] += rng.uniform_int(-20, 20);  // drift
      }  // else: hold
      Value v = current[i];
      if (!force_distinct && rng.bernoulli(0.5)) {
        v = (v / 50) * 50;  // snap to grid: creates ties
      }
      if (force_distinct) {
        v = v * static_cast<Value>(n) + static_cast<Value>(n - 1 - i);
      }
      trace.at(t, i) = v;
    }
  }
  return trace;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, AllMonitorsStrictOnDistinctTraces) {
  Rng rng(GetParam() * 7919 + 1);
  const std::size_t n = 4 + rng.uniform_below(8);
  const std::size_t k = 1 + rng.uniform_below(n);
  const auto trace = fuzz_trace(n, 120, rng, /*force_distinct=*/true);

  std::vector<std::unique_ptr<MonitorBase>> monitors;
  monitors.push_back(std::make_unique<TopkFilterMonitor>(k));
  monitors.push_back(std::make_unique<NaiveMonitor>(k));
  monitors.push_back(std::make_unique<RecomputeMonitor>(k));
  monitors.push_back(std::make_unique<DominanceMonitor>(k));
  monitors.push_back(std::make_unique<SlackMonitor>(k));
  monitors.push_back(std::make_unique<OrderedTopkMonitor>(k));
  monitors.push_back(std::make_unique<ApproxTopkMonitor>(k));

  for (auto& monitor : monitors) {
    auto streams = trace.to_stream_set();
    RunConfig cfg;
    cfg.n = n;
    cfg.k = k;
    cfg.steps = 119;
    cfg.seed = GetParam();
    cfg.validate_order = true;
    const auto r = run_monitor(*monitor, streams, cfg);
    EXPECT_TRUE(r.correct)
        << monitor->name() << " n=" << n << " k=" << k;
  }
}

TEST_P(FuzzSeeds, TieTolerantMonitorsWeakValidOnTiedTraces) {
  Rng rng(GetParam() * 104729 + 7);
  const std::size_t n = 4 + rng.uniform_below(8);
  const std::size_t k = 1 + rng.uniform_below(n);
  const auto trace = fuzz_trace(n, 120, rng, /*force_distinct=*/false);

  // Monitors that are specified to handle raw ties (full-information ones
  // plus the w-space ones).
  std::vector<std::unique_ptr<MonitorBase>> monitors;
  monitors.push_back(std::make_unique<NaiveMonitor>(k));
  monitors.push_back(std::make_unique<RecomputeMonitor>(k));
  monitors.push_back(std::make_unique<DominanceMonitor>(k));
  monitors.push_back(std::make_unique<TopkFilterMonitor>(k));
  monitors.push_back(std::make_unique<SlackMonitor>(k));

  for (auto& monitor : monitors) {
    auto streams = trace.to_stream_set();
    RunConfig cfg;
    cfg.n = n;
    cfg.k = k;
    cfg.steps = 119;
    cfg.seed = GetParam();
    cfg.validation = RunConfig::Validation::kWeak;
    const auto r = run_monitor(*monitor, streams, cfg);
    EXPECT_TRUE(r.correct) << monitor->name() << " n=" << n << " k=" << k;
  }
}

TEST_P(FuzzSeeds, MultiKAllBoundariesOnDistinctTraces) {
  Rng rng(GetParam() * 31 + 3);
  const std::size_t n = 6 + rng.uniform_below(8);
  const auto trace = fuzz_trace(n, 100, rng, /*force_distinct=*/true);
  std::vector<std::size_t> ks{1, 1 + n / 3, 1 + (2 * n) / 3};
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());

  auto streams = trace.to_stream_set();
  Cluster c(n, GetParam());
  MultiKMonitor m(ks);
  for (NodeId i = 0; i < n; ++i) c.set_value(i, streams.advance(i));
  m.initialize(c);
  for (TimeStep t = 1; t < 100; ++t) {
    for (NodeId i = 0; i < n; ++i) c.set_value(i, streams.advance(i));
    m.step(c, t);
    for (const auto k : ks) {
      ASSERT_EQ(m.topk_for(k), true_topk_set(c, k))
          << "k=" << k << " t=" << t << " n=" << n;
    }
  }
}

TEST_P(FuzzSeeds, OfflineOptInvariantsHold) {
  Rng rng(GetParam() * 613 + 11);
  const std::size_t n = 3 + rng.uniform_below(6);
  const std::size_t k = 1 + rng.uniform_below(n - 1);
  const auto trace = fuzz_trace(n, 150, rng, /*force_distinct=*/true);
  const auto opt = compute_offline_opt(trace, k);

  // Structural invariants.
  ASSERT_GE(opt.epochs, 1u);
  EXPECT_LE(opt.epochs, trace.steps());
  EXPECT_EQ(opt.update_times.size(), opt.updates());
  for (std::size_t i = 1; i < opt.update_times.size(); ++i) {
    EXPECT_LT(opt.update_times[i - 1], opt.update_times[i]);
  }

  // Independent feasibility re-check: within each epoch, the top-k set of
  // the epoch's first step must satisfy T+ >= T- over the whole epoch.
  std::vector<TimeStep> starts{0};
  starts.insert(starts.end(), opt.update_times.begin(), opt.update_times.end());
  starts.push_back(trace.steps());
  for (std::size_t e = 0; e + 1 < starts.size(); ++e) {
    const auto s = static_cast<std::size_t>(starts[e]);
    const auto end = static_cast<std::size_t>(starts[e + 1]);
    std::vector<Value> first(n);
    for (NodeId i = 0; i < n; ++i) first[i] = trace.at(s, i);
    const auto members = true_topk_set(first, k);
    std::vector<char> in_set(n, 0);
    for (const NodeId id : members) in_set[id] = 1;
    Value t_plus = kPlusInf;
    Value t_minus = kMinusInf;
    for (std::size_t t = s; t < end; ++t) {
      for (NodeId i = 0; i < n; ++i) {
        const Value v = trace.at(t, i);
        if (in_set[i]) t_plus = std::min(t_plus, v);
        else t_minus = std::max(t_minus, v);
      }
    }
    EXPECT_GE(t_plus, t_minus) << "epoch " << e << " infeasible";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace topkmon
