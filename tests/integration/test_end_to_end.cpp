// End-to-end integration: every monitor stays correct on every stream
// family for a nontrivial horizon, with strict validation on distinct
// values. This is the library's primary safety net.
#include <gtest/gtest.h>

#include <memory>

#include "core/dominance_monitor.hpp"
#include "core/naive_monitor.hpp"
#include "core/ordered_topk_monitor.hpp"
#include "core/recompute_monitor.hpp"
#include "core/runner.hpp"
#include "core/slack_monitor.hpp"
#include "core/topk_monitor.hpp"
#include "streams/factory.hpp"

namespace topkmon {
namespace {

std::unique_ptr<MonitorBase> make_monitor(const std::string& which,
                                          std::size_t k) {
  if (which == "topk_filter") return std::make_unique<TopkFilterMonitor>(k);
  if (which == "naive") return std::make_unique<NaiveMonitor>(k);
  if (which == "recompute") return std::make_unique<RecomputeMonitor>(k);
  if (which == "dominance") return std::make_unique<DominanceMonitor>(k);
  if (which == "slack") return std::make_unique<SlackMonitor>(k);
  if (which == "ordered") return std::make_unique<OrderedTopkMonitor>(k);
  throw std::invalid_argument("unknown monitor " + which);
}

struct Case {
  std::string monitor;
  StreamFamily family;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return info.param.monitor + "_" +
         std::string(family_name(info.param.family));
}

class EndToEnd : public ::testing::TestWithParam<Case> {};

TEST_P(EndToEnd, CorrectForFourHundredSteps) {
  const auto& param = GetParam();
  StreamSpec spec;
  spec.family = param.family;
  constexpr std::size_t kN = 12;
  constexpr std::size_t kK = 3;
  auto streams = make_stream_set(spec, kN, 2024);
  auto monitor = make_monitor(param.monitor, kK);
  RunConfig cfg;
  cfg.n = kN;
  cfg.k = kK;
  cfg.steps = 400;
  cfg.seed = 2024;
  cfg.validate_order = true;
  const auto result = run_monitor(*monitor, streams, cfg);
  EXPECT_TRUE(result.correct);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& mon :
       {"topk_filter", "naive", "recompute", "dominance", "slack", "ordered"}) {
    for (const auto fam : all_families()) {
      cases.push_back(Case{mon, fam});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllMonitorsAllStreams, EndToEnd,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace topkmon
