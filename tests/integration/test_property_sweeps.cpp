// Parameterized property sweeps over (n, k, seed): Algorithm 1 must stay
// correct and maintain valid filters across the whole parameter grid, and
// its protocols must respect their structural invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "core/ground_truth.hpp"
#include "core/runner.hpp"
#include "core/topk_monitor.hpp"
#include "protocols/extremum.hpp"
#include "streams/factory.hpp"

namespace topkmon {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: TopkFilterMonitor over a grid of (n, k).
// ---------------------------------------------------------------------------

class TopkGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(TopkGrid, CorrectOnWalks) {
  const auto [n, k] = GetParam();
  if (k > n) GTEST_SKIP() << "k > n is rejected by construction";
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 5'000;
  auto streams = make_stream_set(spec, n, 100 + n * 31 + k);
  TopkFilterMonitor m(k);
  RunConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.steps = 250;
  cfg.seed = 100 + n * 31 + k;
  const auto result = run_monitor(m, streams, cfg);
  EXPECT_TRUE(result.correct);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TopkGrid,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 8, 16, 33),
                       ::testing::Values<std::size_t>(1, 2, 3, 7, 16)));

// ---------------------------------------------------------------------------
// Sweep 2: filter validity invariant holds after every step (Lemma 2.2).
// ---------------------------------------------------------------------------

class FilterInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilterInvariant, HoldsThroughoutRun) {
  const std::uint64_t seed = GetParam();
  constexpr std::size_t kN = 10;
  constexpr std::size_t kK = 3;
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 8'000;
  auto streams = make_stream_set(spec, kN, seed);
  Cluster c(kN, seed);
  TopkFilterMonitor m(kK);
  for (NodeId i = 0; i < kN; ++i) c.set_value(i, streams.advance(i));
  m.initialize(c);
  for (TimeStep t = 1; t <= 300; ++t) {
    for (NodeId i = 0; i < kN; ++i) c.set_value(i, streams.advance(i));
    m.step(c, t);
    std::vector<Value> values(kN);
    for (NodeId i = 0; i < kN; ++i) values[i] = c.value(i);
    ASSERT_TRUE(is_valid_filter_set(values, m.filters(), m.membership()))
        << "Lemma 2.2 violated at t=" << t << " seed=" << seed;
    ASSERT_EQ(m.topk(), true_topk_set(values, kK)) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterInvariant,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Sweep 3: MaximumProtocol exactness across sizes and seeds.
// ---------------------------------------------------------------------------

class ProtocolExactness
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(ProtocolExactness, MaxAndMinAlwaysExact) {
  const auto [n, seed] = GetParam();
  Cluster c(n, seed);
  Rng values_rng(seed * 7919 + 13);
  Value best = kMinusInf;
  Value worst = kPlusInf;
  NodeId best_id = 0;
  NodeId worst_id = 0;
  for (NodeId i = 0; i < n; ++i) {
    const Value v = values_rng.uniform_int(-1'000'000, 1'000'000);
    c.set_value(i, v);
    if (v > best) {
      best = v;
      best_id = i;
    }
    if (v < worst) {
      worst = v;
      worst_id = i;
    }
  }
  const auto rmax = run_max_protocol(c, c.all_ids(), n);
  EXPECT_EQ(rmax.extremum, best);
  EXPECT_EQ(rmax.winner, best_id);
  const auto rmin = run_min_protocol(c, c.all_ids(), n);
  EXPECT_EQ(rmin.extremum, worst);
  EXPECT_EQ(rmin.winner, worst_id);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, ProtocolExactness,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5, 17, 64, 200),
                       ::testing::Range<std::uint64_t>(1, 11)));

// ---------------------------------------------------------------------------
// Sweep 4: k == n degeneracy is free for every n.
// ---------------------------------------------------------------------------

class DegenerateK : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DegenerateK, NoMessagesEver) {
  const std::size_t n = GetParam();
  StreamSpec spec;
  spec.family = StreamFamily::kIidUniform;
  auto streams = make_stream_set(spec, n, 42);
  TopkFilterMonitor m(n);
  RunConfig cfg;
  cfg.n = n;
  cfg.k = n;
  cfg.steps = 50;
  cfg.seed = 42;
  const auto result = run_monitor(m, streams, cfg);
  EXPECT_TRUE(result.correct);
  EXPECT_EQ(result.comm.total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DegenerateK,
                         ::testing::Values<std::size_t>(1, 2, 3, 9, 30));

}  // namespace
}  // namespace topkmon
