// Reproducibility: identical seeds must reproduce identical traces,
// message counts and answers across independent executions — the property
// every experiment in EXPERIMENTS.md relies on.
#include <gtest/gtest.h>

#include "core/dominance_monitor.hpp"
#include "core/ordered_topk_monitor.hpp"
#include "core/recompute_monitor.hpp"
#include "core/runner.hpp"
#include "core/slack_monitor.hpp"
#include "core/topk_monitor.hpp"
#include "streams/factory.hpp"

namespace topkmon {
namespace {

template <typename MonitorT>
std::pair<std::uint64_t, std::vector<std::uint64_t>> run_once(
    StreamFamily family, std::uint64_t seed) {
  StreamSpec spec;
  spec.family = family;
  auto streams = make_stream_set(spec, 10, seed);
  MonitorT m(3);
  RunConfig cfg;
  cfg.n = 10;
  cfg.k = 3;
  cfg.steps = 400;
  cfg.seed = seed;
  cfg.record_series = true;
  const auto r = run_monitor(m, streams, cfg);
  return {r.comm.total(), r.comm.series()};
}

TEST(Determinism, TopkFilterIdenticalRuns) {
  const auto a = run_once<TopkFilterMonitor>(StreamFamily::kRandomWalk, 31);
  const auto b = run_once<TopkFilterMonitor>(StreamFamily::kRandomWalk, 31);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, TopkFilterDifferentSeedsDiffer) {
  const auto a = run_once<TopkFilterMonitor>(StreamFamily::kRandomWalk, 31);
  const auto b = run_once<TopkFilterMonitor>(StreamFamily::kRandomWalk, 32);
  EXPECT_NE(a.second, b.second);
}

TEST(Determinism, RecomputeIdenticalRuns) {
  const auto a = run_once<RecomputeMonitor>(StreamFamily::kBursty, 33);
  const auto b = run_once<RecomputeMonitor>(StreamFamily::kBursty, 33);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, DominanceIdenticalRuns) {
  const auto a = run_once<DominanceMonitor>(StreamFamily::kSinusoidal, 35);
  const auto b = run_once<DominanceMonitor>(StreamFamily::kSinusoidal, 35);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, SlackIdenticalRuns) {
  const auto a = run_once<SlackMonitor>(StreamFamily::kRandomWalk, 37);
  const auto b = run_once<SlackMonitor>(StreamFamily::kRandomWalk, 37);
  EXPECT_EQ(a.first, b.first);
}

TEST(Determinism, OrderedIdenticalRuns) {
  const auto a = run_once<OrderedTopkMonitor>(StreamFamily::kRandomWalk, 39);
  const auto b = run_once<OrderedTopkMonitor>(StreamFamily::kRandomWalk, 39);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, TraceRecordingIsStable) {
  StreamSpec spec;
  spec.family = StreamFamily::kPareto;
  auto s1 = make_stream_set(spec, 6, 41);
  auto s2 = make_stream_set(spec, 6, 41);
  TopkFilterMonitor m1(2);
  TopkFilterMonitor m2(2);
  RunConfig cfg;
  cfg.n = 6;
  cfg.k = 2;
  cfg.steps = 100;
  cfg.seed = 41;
  cfg.record_trace = true;
  const auto r1 = run_monitor(m1, s1, cfg);
  const auto r2 = run_monitor(m2, s2, cfg);
  ASSERT_TRUE(r1.trace.has_value() && r2.trace.has_value());
  for (std::size_t t = 0; t < r1.trace->steps(); ++t) {
    for (NodeId i = 0; i < 6; ++i) {
      ASSERT_EQ(r1.trace->at(t, i), r2.trace->at(t, i));
    }
  }
}

}  // namespace
}  // namespace topkmon
