// Competitive behaviour: Algorithm 1's message count relative to the
// offline optimum and to the baselines must follow the paper's shape —
// cheap where OPT is cheap (similar streams), and never catastrophically
// worse than per-round recomputation on adversarial inputs.
#include <gtest/gtest.h>

#include "core/naive_monitor.hpp"
#include "core/offline_opt.hpp"
#include "core/recompute_monitor.hpp"
#include "core/runner.hpp"
#include "core/topk_monitor.hpp"
#include "streams/factory.hpp"

namespace topkmon {
namespace {

RunResult run_with_trace(MonitorBase& m, const StreamSpec& spec,
                         std::size_t n, std::size_t k, std::size_t steps,
                         std::uint64_t seed) {
  auto streams = make_stream_set(spec, n, seed);
  RunConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.steps = steps;
  cfg.seed = seed;
  cfg.record_trace = true;
  return run_monitor(m, streams, cfg);
}

TEST(Competitive, FiltersBeatNaiveOnSlowWalks) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 5;  // slow drift: filters should stay quiet
  TopkFilterMonitor filt(3);
  const auto rf = run_with_trace(filt, spec, 16, 3, 1'000, 7);
  NaiveMonitor naive(3);
  const auto rn = run_with_trace(naive, spec, 16, 3, 1'000, 7);
  EXPECT_TRUE(rf.correct);
  EXPECT_TRUE(rn.correct);
  EXPECT_LT(rf.comm.total() * 10, rn.comm.total())
      << "filters should be >10x cheaper than naive on slow walks";
}

TEST(Competitive, FiltersBeatRecomputeOnSlowWalks) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 5;
  TopkFilterMonitor filt(3);
  const auto rf = run_with_trace(filt, spec, 16, 3, 1'000, 9);
  RecomputeMonitor rec(3);
  const auto rr = run_with_trace(rec, spec, 16, 3, 1'000, 9);
  EXPECT_LT(rf.comm.total() * 5, rr.comm.total());
}

TEST(Competitive, RatioAgainstOptIsModestOnWalks) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 2'000;
  TopkFilterMonitor filt(3);
  const auto r = run_with_trace(filt, spec, 16, 3, 2'000, 11);
  ASSERT_TRUE(r.trace.has_value());
  const auto opt = compute_offline_opt(*r.trace, 3);
  ASSERT_GT(opt.updates(), 0u) << "the workload should force OPT updates";
  const double ratio = competitive_ratio(r, 3);
  // Theorem 4.4 bound: O((log Δ + k) log n). Here log Δ ~ 17 (Δ scaled by
  // n=16), k = 3, log n = 4 -> bound scale ~ 80; require the empirical
  // ratio to stay within a small multiple of that scale.
  EXPECT_LT(ratio, 400.0);
  EXPECT_GE(ratio, 1.0);
}

TEST(Competitive, OptNeverExceedsAlgorithmUpdates) {
  // Structural sanity: the offline optimum's epochs can't exceed the
  // number of steps, and the online algorithm's resets can't beat OPT
  // (each reset implies a genuine infeasibility OPT also pays for...
  // weaker: resets >= opt updates is NOT guaranteed per-instance, but
  // resets + midpoint updates >= opt updates is, since each OPT update
  // marks an infeasible extension point the online algorithm must react
  // to with at least one handler call).
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 5'000;
  TopkFilterMonitor filt(2);
  const auto r = run_with_trace(filt, spec, 12, 2, 1'000, 13);
  const auto opt = compute_offline_opt(*r.trace, 2);
  EXPECT_LE(opt.updates(),
            r.monitor.filter_resets + r.monitor.midpoint_updates);
}

TEST(Competitive, RecomputeNearOptimalOnRotatingMax) {
  // §2.1: on worst-case inputs (maximum position changes every round) the
  // classical recompute algorithm is near-optimal; Algorithm 1 may pay its
  // overhead but OPT itself needs an update almost every step.
  StreamSpec spec;
  spec.family = StreamFamily::kRotatingMax;
  TopkFilterMonitor filt(1);
  const auto rf = run_with_trace(filt, spec, 8, 1, 300, 15);
  const auto opt = compute_offline_opt(*rf.trace, 1);
  EXPECT_GT(opt.updates(), 250u);  // OPT pays nearly every step
  RecomputeMonitor rec(1);
  const auto rr = run_with_trace(rec, spec, 8, 1, 300, 15);
  // Both algorithms are busy; neither should be more than ~20x the other.
  const double f = static_cast<double>(rf.comm.total());
  const double c = static_cast<double>(rr.comm.total());
  EXPECT_LT(f / c, 20.0);
  EXPECT_LT(c / f, 20.0);
}

TEST(Competitive, DeltaGrowthIncreasesMessages) {
  // Larger Δ (bigger step spans) forces more halving rounds: messages per
  // OPT update should grow with log Δ (E4 quantifies; here monotonicity
  // over a 64x span change with matched OPT activity).
  auto run_ratio = [](Value step, std::uint64_t seed) {
    StreamSpec spec;
    spec.family = StreamFamily::kRandomWalk;
    spec.walk.max_step = step;
    spec.walk.hi = 100'000'000;
    TopkFilterMonitor filt(2);
    auto streams = make_stream_set(spec, 8, seed);
    RunConfig cfg;
    cfg.n = 8;
    cfg.k = 2;
    cfg.steps = 1'500;
    cfg.seed = seed;
    cfg.record_trace = true;
    const auto r = run_monitor(filt, streams, cfg);
    return competitive_ratio(r, 2);
  };
  double small = 0;
  double large = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    small += run_ratio(1'000, seed);
    large += run_ratio(64'000, seed);
  }
  EXPECT_LT(small, large * 1.2)
      << "ratio should not shrink when Delta grows 64x";
}

}  // namespace
}  // namespace topkmon
