// Model-conformance tests: the communication observed through the EventLog
// tap must obey the paper's model — quiescent steps are silent for
// filter-based algorithms, accounting channels agree with the tap, message
// kinds flow only in their legal directions, and payloads fit the model's
// word budget by construction.
#include <gtest/gtest.h>

#include "core/naive_monitor.hpp"
#include "core/runner.hpp"
#include "core/topk_monitor.hpp"
#include "sim/event_log.hpp"
#include "streams/factory.hpp"

namespace topkmon {
namespace {

/// Runs Algorithm 1 with a tap attached; returns the log and final stats.
struct TappedRun {
  EventLog log;
  CommStats stats;
  MonitorStats monitor;
  std::vector<TimeStep> violation_steps;
};

TappedRun run_tapped(std::size_t n, std::size_t k, std::size_t steps,
                     std::uint64_t seed) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 4'000;
  auto streams = make_stream_set(spec, n, seed);
  TappedRun out;
  Cluster c(n, seed);
  c.net().set_tap(out.log.tap());
  TopkFilterMonitor m(k);
  for (NodeId i = 0; i < n; ++i) c.set_value(i, streams.advance(i));
  out.log.begin_step(0);
  m.initialize(c);
  for (TimeStep t = 1; t <= steps; ++t) {
    for (NodeId i = 0; i < n; ++i) c.set_value(i, streams.advance(i));
    out.log.begin_step(t);
    const auto before = m.monitor_stats().violation_steps;
    m.step(c, t);
    if (m.monitor_stats().violation_steps != before) {
      out.violation_steps.push_back(t);
    }
  }
  out.stats = c.stats();
  out.monitor = m.monitor_stats();
  return out;
}

TEST(MessageModel, TapAgreesWithAccounting) {
  const auto r = run_tapped(12, 3, 400, 5);
  EXPECT_EQ(r.log.size(), r.stats.total());
  EXPECT_EQ(r.log.count_direction(MsgDirection::kUpstream), r.stats.upstream());
  EXPECT_EQ(r.log.count_direction(MsgDirection::kUnicast), r.stats.unicast());
  EXPECT_EQ(r.log.count_direction(MsgDirection::kBroadcast),
            r.stats.broadcast());
}

TEST(MessageModel, QuiescentStepsAreSilent) {
  const auto r = run_tapped(12, 3, 400, 7);
  // Messages may only appear at step 0 (initialization) or at steps the
  // monitor reported a violation.
  std::vector<char> allowed(401, 0);
  allowed[0] = 1;
  for (const auto t : r.violation_steps) allowed[t] = 1;
  for (const auto t : r.log.active_steps()) {
    EXPECT_TRUE(allowed[t]) << "unexpected traffic at step " << t;
  }
}

TEST(MessageModel, KindsFlowInLegalDirectionsOnly) {
  const auto r = run_tapped(12, 3, 400, 9);
  for (const auto& e : r.log.events()) {
    switch (e.message.kind) {
      case MsgKind::kValueReport:
      case MsgKind::kViolation:
        EXPECT_EQ(e.direction, MsgDirection::kUpstream);
        break;
      case MsgKind::kRoundBeacon:
      case MsgKind::kWinnerAnnounce:
      case MsgKind::kFilterUpdate:
      case MsgKind::kProtocolStart:
        EXPECT_EQ(e.direction, MsgDirection::kBroadcast);
        break;
      case MsgKind::kFilterAssign:
      case MsgKind::kProbe:
        EXPECT_EQ(e.direction, MsgDirection::kUnicast);
        break;
      case MsgKind::kKindCount:
        FAIL() << "invalid kind on the wire";
    }
  }
}

TEST(MessageModel, UpstreamMessagesCarryTrueSender) {
  const auto r = run_tapped(8, 2, 200, 11);
  for (const auto& e : r.log.events()) {
    if (e.direction != MsgDirection::kUpstream) continue;
    EXPECT_LT(e.message.from, 8u);
  }
}

TEST(MessageModel, EveryViolationStepBroadcastsExactlyOneResolution) {
  // Each handler invocation ends in either a kFilterUpdate (midpoint) or a
  // reset whose final broadcast is also a kFilterUpdate — so every
  // violation step carries exactly one kFilterUpdate.
  const auto r = run_tapped(12, 3, 400, 13);
  for (const auto t : r.violation_steps) {
    EXPECT_EQ(r.log.count_kind_at(MsgKind::kFilterUpdate, t), 1u)
        << "step " << t;
  }
  EXPECT_EQ(r.log.count_kind(MsgKind::kFilterUpdate),
            r.violation_steps.size() + 1)  // +1 for initialization
      << "one resolution broadcast per violation step plus init";
}

TEST(MessageModel, NaiveBreakdownIsPureUpstream) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  auto streams = make_stream_set(spec, 6, 15);
  Cluster c(6, 15);
  EventLog log;
  c.net().set_tap(log.tap());
  NaiveMonitor m(2);
  for (NodeId i = 0; i < 6; ++i) c.set_value(i, streams.advance(i));
  m.initialize(c);
  for (TimeStep t = 1; t <= 50; ++t) {
    for (NodeId i = 0; i < 6; ++i) c.set_value(i, streams.advance(i));
    m.step(c, t);
  }
  EXPECT_EQ(log.size(), 6u * 51u);
  EXPECT_EQ(log.count_direction(MsgDirection::kUpstream), log.size());
  EXPECT_EQ(log.count_kind(MsgKind::kValueReport), log.size());
}

}  // namespace
}  // namespace topkmon
