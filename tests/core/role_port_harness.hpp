// Shared differential equivalence harness for native role ports.
//
// Every native CoordinatorAlgo/NodeAlgo port of a lock-step monitor is
// proven against its MonitorBase twin with the same instruments:
//
//   * run_lockstep / run_native — twin runs of the same spec over the
//     same stream family, shape and seed, one through the legacy
//     run_monitor path (the reference oracle), one through the Scenario
//     path (the role deployment under the SimDriver);
//   * expect_identical / results_identical — the full comparison:
//     per-step message series, messages by direction and by kind,
//     algorithm event counters, and the per-step error pattern against
//     the ground truth (which pins the answers themselves);
//   * expect_twin_lockstep_parity — a manual side-by-side drive of both
//     twins that additionally compares the coordinator's *answer* after
//     every step (rank order included for the ordered port) and, at the
//     end of the run, the full state of every per-node RNG plus the
//     coordinator RNG — the coin-flip-identity proof: both runs must
//     have consumed exactly the same random draws from the same streams.
//
// The harness is deliberately spec-agnostic: the same functions verify
// the five ports this PR adds (slack, dominance, approx, multi_k,
// ordered) and re-verify the three pre-existing ones (topk_filter,
// naive, naive_chg). Its own teeth are pinned by the mutant property
// test (test_port_mutant.cpp): a deliberately off-by-one port must make
// results_identical return false on every network policy.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/ordered_roles.hpp"
#include "core/ordered_topk_monitor.hpp"
#include "core/runner.hpp"
#include "exp/monitor_registry.hpp"
#include "exp/scenario.hpp"
#include "sim/cluster.hpp"
#include "streams/factory.hpp"

namespace topkmon::harness {

struct Shape {
  std::size_t n;
  std::size_t k;
};

inline RunResult run_lockstep(
    const std::string& spec, const StreamSpec& stream, Shape s,
    std::uint64_t seed, std::size_t steps,
    RunConfig::Validation validation = RunConfig::Validation::kWeak) {
  auto monitor = exp::make_monitor(spec, s.k);
  auto streams = make_stream_set(stream, s.n, seed);
  RunConfig cfg;
  cfg.n = s.n;
  cfg.k = s.k;
  cfg.steps = steps;
  cfg.seed = seed;
  cfg.validation = validation;
  cfg.record_series = true;
  // Divergence is recorded, not thrown: lossy configurations (and the
  // mutant property test) legitimately err, and the comparison below
  // checks that both twins err in exactly the same steps.
  return run_monitor(*monitor, streams, cfg, /*throw_on_error=*/false);
}

inline RunResult run_lockstep(
    const std::string& spec, const std::string& family, Shape s,
    std::uint64_t seed, std::size_t steps,
    RunConfig::Validation validation = RunConfig::Validation::kWeak) {
  return run_lockstep(spec, parse_stream_spec(family, StreamSpec{}), s, seed,
                      steps, validation);
}

inline RunResult run_native(
    const std::string& spec, const StreamSpec& stream, Shape s,
    std::uint64_t seed, std::size_t steps,
    RunConfig::Validation validation = RunConfig::Validation::kWeak,
    const std::string& network = "instant", std::size_t workers = 1,
    const std::string& faults = "") {
  exp::Scenario sc;
  sc.monitor = spec;
  sc.stream = stream;
  sc.with_network(network);
  sc.n = s.n;
  sc.k = s.k;
  sc.steps = steps;
  sc.seed = seed;
  sc.workers = workers;
  sc.faults = faults;
  sc.validation = validation;
  sc.record_series = true;
  sc.throw_on_error = false;
  return exp::run_scenario(sc);
}

inline RunResult run_native(
    const std::string& spec, const std::string& family, Shape s,
    std::uint64_t seed, std::size_t steps,
    RunConfig::Validation validation = RunConfig::Validation::kWeak,
    const std::string& network = "instant", std::size_t workers = 1,
    const std::string& faults = "") {
  return run_native(spec, parse_stream_spec(family, StreamSpec{}), s, seed,
                    steps, validation, network, workers, faults);
}

/// Non-fatal twin comparison: true iff every compared dimension matches.
/// The mutant property test uses the boolean form to assert the harness
/// *fails* on a perturbed port; expect_identical uses gtest expectations
/// for readable per-dimension diagnostics.
inline bool results_identical(const RunResult& a, const RunResult& b) {
  if (a.monitor_name != b.monitor_name) return false;
  if (a.comm.upstream() != b.comm.upstream()) return false;
  if (a.comm.unicast() != b.comm.unicast()) return false;
  if (a.comm.broadcast() != b.comm.broadcast()) return false;
  for (std::size_t kind = 0; kind < kNumMsgKinds; ++kind) {
    if (a.comm.by_kind(static_cast<MsgKind>(kind)) !=
        b.comm.by_kind(static_cast<MsgKind>(kind))) {
      return false;
    }
  }
  if (a.comm.series() != b.comm.series()) return false;
  if (a.monitor.violation_steps != b.monitor.violation_steps) return false;
  if (a.monitor.violations != b.monitor.violations) return false;
  if (a.monitor.handler_calls != b.monitor.handler_calls) return false;
  if (a.monitor.midpoint_updates != b.monitor.midpoint_updates) return false;
  if (a.monitor.filter_resets != b.monitor.filter_resets) return false;
  if (a.monitor.protocol_runs != b.monitor.protocol_runs) return false;
  if (a.correct != b.correct) return false;
  if (a.error_steps != b.error_steps) return false;
  if (a.first_error_step != b.first_error_step) return false;
  if (a.error_step_list != b.error_step_list) return false;
  return true;
}

inline void expect_identical(const RunResult& a, const RunResult& b,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.monitor_name, b.monitor_name);

  // Communication: every direction, every kind, every step.
  EXPECT_EQ(a.comm.upstream(), b.comm.upstream());
  EXPECT_EQ(a.comm.unicast(), b.comm.unicast());
  EXPECT_EQ(a.comm.broadcast(), b.comm.broadcast());
  for (std::size_t kind = 0; kind < kNumMsgKinds; ++kind) {
    EXPECT_EQ(a.comm.by_kind(static_cast<MsgKind>(kind)),
              b.comm.by_kind(static_cast<MsgKind>(kind)))
        << "kind " << msg_kind_name(static_cast<MsgKind>(kind));
  }
  EXPECT_EQ(a.comm.series(), b.comm.series());

  // Algorithm event counters.
  EXPECT_EQ(a.monitor.violation_steps, b.monitor.violation_steps);
  EXPECT_EQ(a.monitor.violations, b.monitor.violations);
  EXPECT_EQ(a.monitor.handler_calls, b.monitor.handler_calls);
  EXPECT_EQ(a.monitor.midpoint_updates, b.monitor.midpoint_updates);
  EXPECT_EQ(a.monitor.filter_resets, b.monitor.filter_resets);
  EXPECT_EQ(a.monitor.protocol_runs, b.monitor.protocol_runs);

  // Per-step answer pattern against the ground truth: identical steps
  // must err (none at all for exact monitors on the instant network).
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.error_steps, b.error_steps);
  EXPECT_EQ(a.first_error_step, b.first_error_step);
  EXPECT_EQ(a.error_step_list, b.error_step_list);
}

/// Drives both twins side by side over the same values and compares the
/// coordinator's answer after *every* step (rank order too when both
/// sides expose one), then — the coin-flip-identity proof — the final
/// state of all n node RNGs and the coordinator RNG. Identical final
/// RNG state on identical seeds means both implementations consumed
/// exactly the same draws in the same order.
inline void expect_twin_lockstep_parity(const std::string& spec,
                                        const std::string& family, Shape s,
                                        std::uint64_t seed,
                                        std::size_t steps) {
  SCOPED_TRACE("twin " + spec + " fam=" + family);
  const StreamSpec stream = parse_stream_spec(family, StreamSpec{});

  // Lock-step oracle side.
  Cluster lock_cluster(s.n, seed);
  auto monitor = exp::make_monitor(spec, s.k);
  auto lock_streams = make_stream_set(stream, s.n, seed);
  lock_streams.plan_steps(steps + 1);

  // Native role side.
  Cluster role_cluster(s.n, seed);
  exp::RolePair pair = exp::make_role_pair(role_cluster, spec, s.k);
  ASSERT_TRUE(pair.native) << spec << " did not resolve to a native port";
  SimDriver driver(role_cluster, *pair.coordinator, pair.nodes, pair.native);
  auto role_streams = make_stream_set(stream, s.n, seed);
  role_streams.plan_steps(steps + 1);

  const auto* ordered_lockstep =
      dynamic_cast<const OrderedTopkMonitor*>(monitor.get());
  const auto* ordered_native =
      dynamic_cast<const OrderedCoordinator*>(pair.coordinator.get());

  std::vector<Value> observed(s.n);
  const auto observe = [&](Cluster& cluster, StreamSet& streams) {
    streams.advance_all(observed);
    for (NodeId id = 0; id < s.n; ++id) cluster.set_value(id, observed[id]);
  };
  const auto compare_answers = [&](TimeStep t) {
    EXPECT_EQ(monitor->topk(), pair.coordinator->topk()) << "step " << t;
    if (ordered_lockstep != nullptr && ordered_native != nullptr) {
      EXPECT_EQ(ordered_lockstep->ordered_topk(),
                ordered_native->ordered_topk())
          << "order at step " << t;
    }
  };

  lock_cluster.stats().begin_step(0);
  observe(lock_cluster, lock_streams);
  monitor->initialize(lock_cluster);
  role_cluster.stats().begin_step(0);
  observe(role_cluster, role_streams);
  driver.initialize();
  compare_answers(0);

  for (TimeStep t = 1; t <= steps; ++t) {
    lock_cluster.stats().begin_step(t);
    observe(lock_cluster, lock_streams);
    monitor->step(lock_cluster, t);
    role_cluster.stats().begin_step(t);
    observe(role_cluster, role_streams);
    driver.step(t);
    compare_answers(t);
  }

  for (NodeId id = 0; id < s.n; ++id) {
    EXPECT_TRUE(lock_cluster.node_rng(id) == role_cluster.node_rng(id))
        << "node " << id << " RNG state diverged (unequal coin draws)";
  }
  EXPECT_TRUE(lock_cluster.coordinator_rng() == role_cluster.coordinator_rng())
      << "coordinator RNG state diverged (unequal coin draws)";
  EXPECT_EQ(lock_cluster.stats().total(), role_cluster.stats().total());
}

}  // namespace topkmon::harness
