// Tests for the omniscient ground-truth helpers.
#include "core/ground_truth.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace topkmon {
namespace {

TEST(TrueTopk, OrderedByRank) {
  const std::vector<Value> values{30, 10, 50, 20, 40};
  const auto top3 = true_topk_ordered(values, 3);
  EXPECT_EQ(top3, (std::vector<NodeId>{2, 4, 0}));
}

TEST(TrueTopk, SetSortedById) {
  const std::vector<Value> values{30, 10, 50, 20, 40};
  const auto top3 = true_topk_set(values, 3);
  EXPECT_EQ(top3, (std::vector<NodeId>{0, 2, 4}));
}

TEST(TrueTopk, KZero) {
  const std::vector<Value> values{1, 2};
  EXPECT_TRUE(true_topk_set(values, 0).empty());
}

TEST(TrueTopk, KEqualsN) {
  const std::vector<Value> values{5, 1, 3};
  const auto all = true_topk_set(values, 3);
  EXPECT_EQ(all, (std::vector<NodeId>{0, 1, 2}));
  const auto ordered = true_topk_ordered(values, 3);
  EXPECT_EQ(ordered, (std::vector<NodeId>{0, 2, 1}));
}

TEST(TrueTopk, ThrowsOnKTooLarge) {
  const std::vector<Value> values{1};
  EXPECT_THROW(true_topk_set(values, 2), std::invalid_argument);
}

TEST(TrueTopk, TiesBrokenTowardSmallerId) {
  const std::vector<Value> values{7, 7, 7};
  EXPECT_EQ(true_topk_ordered(values, 2), (std::vector<NodeId>{0, 1}));
}

TEST(TrueTopk, FromCluster) {
  Cluster c(4, 1);
  c.set_value(0, 1);
  c.set_value(1, 100);
  c.set_value(2, 50);
  c.set_value(3, 75);
  EXPECT_EQ(true_topk_set(c, 2), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(true_topk_ordered(c, 2), (std::vector<NodeId>{1, 3}));
}

TEST(NthValue, Ranks) {
  const std::vector<Value> values{30, 10, 50, 20, 40};
  EXPECT_EQ(nth_value(values, 1), 50);
  EXPECT_EQ(nth_value(values, 3), 30);
  EXPECT_EQ(nth_value(values, 5), 10);
  EXPECT_THROW(nth_value(values, 0), std::invalid_argument);
  EXPECT_THROW(nth_value(values, 6), std::invalid_argument);
}

TEST(NthValue, WithDuplicates) {
  const std::vector<Value> values{5, 5, 3};
  EXPECT_EQ(nth_value(values, 1), 5);
  EXPECT_EQ(nth_value(values, 2), 5);
  EXPECT_EQ(nth_value(values, 3), 3);
}

TEST(IsValidTopk, AcceptsTrueAnswer) {
  const std::vector<Value> values{30, 10, 50, 20, 40};
  const std::vector<NodeId> good{2, 4, 0};
  EXPECT_TRUE(is_valid_topk(values, good));
}

TEST(IsValidTopk, RejectsWrongMember) {
  const std::vector<Value> values{30, 10, 50, 20, 40};
  const std::vector<NodeId> bad{2, 4, 1};  // node 1 (10) below node 0 (30)
  EXPECT_FALSE(is_valid_topk(values, bad));
}

TEST(IsValidTopk, AcceptsAnyTieBreak) {
  const std::vector<Value> values{9, 9, 1};
  EXPECT_TRUE(is_valid_topk(values, std::vector<NodeId>{0}));
  EXPECT_TRUE(is_valid_topk(values, std::vector<NodeId>{1}));
  EXPECT_FALSE(is_valid_topk(values, std::vector<NodeId>{2}));
}

TEST(IsValidTopk, RejectsDuplicatesAndBadIds) {
  const std::vector<Value> values{1, 2, 3};
  EXPECT_FALSE(is_valid_topk(values, std::vector<NodeId>{2, 2}));
  EXPECT_FALSE(is_valid_topk(values, std::vector<NodeId>{5}));
}

TEST(IsValidTopk, EmptyAndFullCandidates) {
  const std::vector<Value> values{1, 2};
  EXPECT_TRUE(is_valid_topk(values, std::vector<NodeId>{}));
  EXPECT_TRUE(is_valid_topk(values, std::vector<NodeId>{0, 1}));
}

}  // namespace
}  // namespace topkmon
