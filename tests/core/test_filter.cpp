// Tests for the Filter type and the Lemma 2.2 validity characterization.
#include "core/filter.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace topkmon {
namespace {

TEST(Filter, DefaultIsUnbounded) {
  Filter f;
  EXPECT_TRUE(f.contains(0));
  EXPECT_TRUE(f.contains(kMinusInf));
  EXPECT_TRUE(f.contains(kPlusInf));
}

TEST(Filter, ClosedIntervalSemantics) {
  Filter f{10, 20};
  EXPECT_TRUE(f.contains(10));
  EXPECT_TRUE(f.contains(20));
  EXPECT_TRUE(f.contains(15));
  EXPECT_FALSE(f.contains(9));
  EXPECT_FALSE(f.contains(21));
}

TEST(Filter, ViolationSide) {
  Filter f{10, 20};
  EXPECT_EQ(f.violation_side(5), -1);
  EXPECT_EQ(f.violation_side(25), +1);
  EXPECT_EQ(f.violation_side(10), 0);
  EXPECT_EQ(f.violation_side(20), 0);
}

TEST(Filter, Equality) {
  EXPECT_EQ((Filter{1, 2}), (Filter{1, 2}));
  EXPECT_NE((Filter{1, 2}), (Filter{1, 3}));
}

TEST(FilterSet, ValidMidpointAssignment) {
  // values: 100, 90 | 10, 5 with boundary at 50 (k = 2).
  const std::vector<Value> values{100, 90, 10, 5};
  const std::vector<Filter> filters{{50, kPlusInf},
                                    {50, kPlusInf},
                                    {kMinusInf, 50},
                                    {kMinusInf, 50}};
  const std::vector<char> in_topk{1, 1, 0, 0};
  EXPECT_TRUE(is_valid_filter_set(values, filters, in_topk));
}

TEST(FilterSet, SharedBoundaryPointAllowed) {
  // Lemma 2.2 allows intervals to share exactly one point.
  const std::vector<Value> values{50, 50};
  const std::vector<Filter> filters{{50, kPlusInf}, {kMinusInf, 50}};
  const std::vector<char> in_topk{1, 0};
  EXPECT_TRUE(is_valid_filter_set(values, filters, in_topk));
}

TEST(FilterSet, ValueOutsideFilterInvalid) {
  const std::vector<Value> values{40, 10};  // 40 < lo = 50
  const std::vector<Filter> filters{{50, kPlusInf}, {kMinusInf, 50}};
  const std::vector<char> in_topk{1, 0};
  EXPECT_FALSE(is_valid_filter_set(values, filters, in_topk));
}

TEST(FilterSet, OverlappingAcrossBoundaryInvalid) {
  // Top-k lower bound (40) below an outsider's upper bound (60): a
  // crossing could happen silently.
  const std::vector<Value> values{100, 10};
  const std::vector<Filter> filters{{40, kPlusInf}, {kMinusInf, 60}};
  const std::vector<char> in_topk{1, 0};
  EXPECT_FALSE(is_valid_filter_set(values, filters, in_topk));
}

TEST(FilterSet, PerPairBoundariesValid) {
  // Non-uniform boundaries are fine as long as min top lo >= max rest hi.
  const std::vector<Value> values{100, 80, 20, 10};
  const std::vector<Filter> filters{{70, kPlusInf},
                                    {60, kPlusInf},
                                    {kMinusInf, 55},
                                    {kMinusInf, 30}};
  const std::vector<char> in_topk{1, 1, 0, 0};
  EXPECT_TRUE(is_valid_filter_set(values, filters, in_topk));
}

TEST(FilterSet, AllTopKIsTriviallyValid) {
  const std::vector<Value> values{3, 1};
  const std::vector<Filter> filters{{kMinusInf, kPlusInf},
                                    {kMinusInf, kPlusInf}};
  const std::vector<char> in_topk{1, 1};
  EXPECT_TRUE(is_valid_filter_set(values, filters, in_topk));
}

TEST(FilterSet, SizeMismatchInvalid) {
  const std::vector<Value> values{1};
  const std::vector<Filter> filters{{0, 2}, {0, 2}};
  const std::vector<char> in_topk{1};
  EXPECT_FALSE(is_valid_filter_set(values, filters, in_topk));
}

}  // namespace
}  // namespace topkmon
