// Tests for the ε-approximate monitor: ε-validity at every step, message
// savings vs the exact monitor, and the ε = 0 degeneration.
#include "core/approx_monitor.hpp"

#include <gtest/gtest.h>

#include "core/ground_truth.hpp"
#include "core/runner.hpp"
#include "core/topk_monitor.hpp"
#include "streams/factory.hpp"

namespace topkmon {
namespace {

TEST(ApproxMonitor, RejectsBadParams) {
  EXPECT_THROW(ApproxTopkMonitor(0), std::invalid_argument);
  ApproxTopkMonitor::Options o;
  o.epsilon = -1;
  EXPECT_THROW(ApproxTopkMonitor(2, o), std::invalid_argument);
}

TEST(ApproxMonitor, EpsValidityHelpers) {
  const std::vector<Value> values{100, 95, 90};
  // {1} is not exact top-1 but is 5-valid and 10-valid.
  EXPECT_FALSE(is_valid_topk_eps(values, std::vector<NodeId>{1}, 0));
  EXPECT_TRUE(is_valid_topk_eps(values, std::vector<NodeId>{1}, 5));
  EXPECT_TRUE(is_valid_topk_eps(values, std::vector<NodeId>{1}, 10));
  EXPECT_EQ(topk_regret(values, std::vector<NodeId>{1}), 5);
  EXPECT_EQ(topk_regret(values, std::vector<NodeId>{0}), 0);
  EXPECT_EQ(topk_regret(values, std::vector<NodeId>{2}), 10);
  EXPECT_EQ(topk_regret(values, std::vector<NodeId>{7}), kPlusInf);
}

TEST(ApproxMonitor, ZeroEpsilonIsExactEveryStep) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 3'000;
  auto streams = make_stream_set(spec, 10, 5);
  ApproxTopkMonitor m(3);  // default epsilon = 0
  RunConfig cfg;
  cfg.n = 10;
  cfg.k = 3;
  cfg.steps = 600;
  cfg.seed = 5;
  const auto r = run_monitor(m, streams, cfg);  // strict validation
  EXPECT_TRUE(r.correct);
}

class ApproxEpsSweep : public ::testing::TestWithParam<Value> {};

TEST_P(ApproxEpsSweep, AlwaysEpsValid) {
  const Value eps = GetParam();
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 3'000;
  spec.enforce_distinct = false;  // keep raw value scale == eps scale
  auto streams = make_stream_set(spec, 10, 11);
  ApproxTopkMonitor::Options o;
  o.epsilon = eps;
  ApproxTopkMonitor m(3, o);
  Cluster c(10, 11);
  for (NodeId i = 0; i < 10; ++i) c.set_value(i, streams.advance(i));
  m.initialize(c);
  Value worst_regret = 0;
  for (TimeStep t = 1; t <= 800; ++t) {
    for (NodeId i = 0; i < 10; ++i) c.set_value(i, streams.advance(i));
    m.step(c, t);
    ASSERT_TRUE(is_valid_topk_eps(c, m.topk(), eps))
        << "eps=" << eps << " t=" << t;
    std::vector<Value> values(10);
    for (NodeId i = 0; i < 10; ++i) values[i] = c.value(i);
    worst_regret = std::max(worst_regret, topk_regret(values, m.topk()));
  }
  EXPECT_LE(worst_regret, eps);
}

INSTANTIATE_TEST_SUITE_P(Eps, ApproxEpsSweep,
                         ::testing::Values<Value>(0, 1, 7, 100, 5'000,
                                                  100'000));

TEST(ApproxMonitor, LargerEpsilonSendsFewerMessages) {
  auto run_with_eps = [](Value eps) {
    StreamSpec spec;
    spec.family = StreamFamily::kRandomWalk;
    spec.walk.max_step = 2'000;
    spec.walk.lo = 0;
    spec.walk.hi = 60'000;  // confined: nodes interact constantly
    spec.enforce_distinct = false;
    auto streams = make_stream_set(spec, 16, 13);
    ApproxTopkMonitor::Options o;
    o.epsilon = eps;
    ApproxTopkMonitor m(4, o);
    RunConfig cfg;
    cfg.n = 16;
    cfg.k = 4;
    cfg.steps = 1'000;
    cfg.seed = 13;
    cfg.validation = RunConfig::Validation::kOff;  // eps-validity checked above
    return run_monitor(m, streams, cfg).comm.total();
  };
  const auto exact = run_with_eps(0);
  const auto loose = run_with_eps(50'000);
  EXPECT_LT(loose, exact / 2);
}

TEST(ApproxMonitor, HugeEpsilonNearSilent) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 500;
  spec.walk.lo = 0;
  spec.walk.hi = 10'000;
  spec.enforce_distinct = false;
  auto streams = make_stream_set(spec, 8, 17);
  ApproxTopkMonitor::Options o;
  o.epsilon = 1'000'000;  // wider than the whole value range
  ApproxTopkMonitor m(2, o);
  RunConfig cfg;
  cfg.n = 8;
  cfg.k = 2;
  cfg.steps = 500;
  cfg.seed = 17;
  cfg.validation = RunConfig::Validation::kOff;
  const auto r = run_monitor(m, streams, cfg);
  // Only initialization traffic; filters can never be violated.
  EXPECT_EQ(r.monitor.violation_steps, 0u);
}

TEST(ApproxMonitor, DegenerateKEqualsN) {
  Cluster c(3, 1);
  ApproxTopkMonitor::Options o;
  o.epsilon = 10;
  ApproxTopkMonitor m(3, o);
  m.initialize(c);
  EXPECT_EQ(c.stats().total(), 0u);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 1, 2}));
}

TEST(ApproxMonitor, OddEpsilonNoLivelock) {
  // With odd eps the boundary re-centering must still terminate (the
  // 2*floor(eps/2) slack rule); drive a node to sit exactly at T+ and
  // check violations do not repeat forever on a static configuration.
  Cluster c(2, 3);
  c.set_value(0, 1'001);
  c.set_value(1, 0);
  ApproxTopkMonitor::Options o;
  o.epsilon = 7;
  ApproxTopkMonitor m(1, o);
  m.initialize(c);
  // Drop node 0 just below the widened filter once.
  c.set_value(0, m.boundary() - o.epsilon / 2 - 1);
  m.step(c, 1);
  const auto msgs_after_first = c.stats().total();
  // Static values afterwards: no further messages may flow.
  for (TimeStep t = 2; t <= 10; ++t) m.step(c, t);
  EXPECT_EQ(c.stats().total(), msgs_after_first);
}

}  // namespace
}  // namespace topkmon
