// Tests for the offline-optimal epoch computation (Lemma 3.2 feasibility +
// greedy optimality).
#include "core/offline_opt.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace topkmon {
namespace {

TraceMatrix from_rows(const std::vector<std::vector<Value>>& rows) {
  TraceMatrix m(rows.at(0).size(), rows.size());
  for (std::size_t t = 0; t < rows.size(); ++t) {
    for (NodeId i = 0; i < rows[t].size(); ++i) m.at(t, i) = rows[t][i];
  }
  return m;
}

TEST(OfflineOpt, RejectsBadK) {
  const auto m = from_rows({{1, 2}});
  EXPECT_THROW(compute_offline_opt(m, 0), std::invalid_argument);
  EXPECT_THROW(compute_offline_opt(m, 3), std::invalid_argument);
}

TEST(OfflineOpt, EmptyTrace) {
  TraceMatrix m(2, 0);
  const auto r = compute_offline_opt(m, 1);
  EXPECT_EQ(r.epochs, 0u);
  EXPECT_EQ(r.updates(), 0u);
}

TEST(OfflineOpt, StaticTraceNeedsOneEpoch) {
  const auto m = from_rows({{10, 5}, {10, 5}, {10, 5}});
  const auto r = compute_offline_opt(m, 1);
  EXPECT_EQ(r.epochs, 1u);
  EXPECT_EQ(r.updates(), 0u);
  EXPECT_TRUE(r.update_times.empty());
}

TEST(OfflineOpt, DriftWithoutCrossingNeedsOneEpoch) {
  // Top node stays above the outsider's historical maximum: feasible with
  // one filter set even though both move.
  const auto m = from_rows({{100, 10}, {90, 20}, {80, 30}, {70, 40}});
  const auto r = compute_offline_opt(m, 1);
  EXPECT_EQ(r.epochs, 1u);
}

TEST(OfflineOpt, TouchingBoundaryIsStillFeasible) {
  // T+ == T- is allowed (shared filter point, Lemma 2.2).
  const auto m = from_rows({{100, 10}, {50, 50}});
  const auto r = compute_offline_opt(m, 1);
  EXPECT_EQ(r.epochs, 1u);
}

TEST(OfflineOpt, SwapForcesUpdate) {
  const auto m = from_rows({{100, 10}, {10, 100}});
  const auto r = compute_offline_opt(m, 1);
  EXPECT_EQ(r.epochs, 2u);
  ASSERT_EQ(r.update_times.size(), 1u);
  EXPECT_EQ(r.update_times[0], 1u);
}

TEST(OfflineOpt, CrossingWithoutSetChangeStillCostsIfHistoryCrosses) {
  // Node A sinks to 40 after node B already peaked at 60: even though at
  // every single instant the set {A} is the answer... actually B peaks
  // above A's later minimum, so one static filter cannot cover both
  // instants (T+ = 40 < 60 = T-).
  const auto m = from_rows({{100, 60}, {80, 20}, {40, 20}});
  const auto r = compute_offline_opt(m, 1);
  EXPECT_EQ(r.epochs, 2u);
}

TEST(OfflineOpt, GreedyExtendsMaximally) {
  // Feasible prefix of length 3, then a swap, then feasible suffix: exactly
  // two epochs, update at the swap time.
  const auto m = from_rows({
      {100, 10},  // t0
      {95, 15},
      {90, 20},
      {10, 100},  // swap at t=3
      {12, 95},
  });
  const auto r = compute_offline_opt(m, 1);
  EXPECT_EQ(r.epochs, 2u);
  ASSERT_EQ(r.update_times.size(), 1u);
  EXPECT_EQ(r.update_times[0], 3u);
}

TEST(OfflineOpt, RepeatedSwapsCostLinearEpochs) {
  std::vector<std::vector<Value>> rows;
  for (int t = 0; t < 10; ++t) {
    rows.push_back(t % 2 == 0 ? std::vector<Value>{100, 10}
                              : std::vector<Value>{10, 100});
  }
  const auto r = compute_offline_opt(from_rows(rows), 1);
  EXPECT_EQ(r.epochs, 10u);  // every step swaps
}

TEST(OfflineOpt, KEqualsNIsFree) {
  const auto m = from_rows({{1, 2}, {2, 1}, {5, 0}});
  const auto r = compute_offline_opt(m, 2);
  EXPECT_EQ(r.epochs, 1u);
}

TEST(OfflineOpt, K2BoundaryOnlyMatters) {
  // Churn inside the top-2 and inside the bottom-2 is free; only the
  // boundary between ranks 2 and 3 forces updates.
  const auto m = from_rows({
      {100, 90, 10, 5},
      {90, 100, 5, 10},   // swaps within each side: free
      {100, 90, 10, 5},
  });
  const auto r = compute_offline_opt(m, 2);
  EXPECT_EQ(r.epochs, 1u);
}

TEST(OfflineOpt, RefinedMessagesCountMembershipChanges) {
  const auto m = from_rows({{100, 10}, {10, 100}});
  const auto r = compute_offline_opt(m, 1);
  // One update; both nodes change membership: 1 broadcast + 2 unicasts.
  EXPECT_EQ(r.refined_messages, 3u);
}

TEST(TraceDelta, ComputesMaxGap) {
  const auto m = from_rows({{100, 10}, {50, 45}, {70, 10}});
  EXPECT_EQ(trace_delta(m, 1), 90);
  EXPECT_THROW(trace_delta(m, 2), std::invalid_argument);
  EXPECT_THROW(trace_delta(m, 0), std::invalid_argument);
}

}  // namespace
}  // namespace topkmon
