// The sharding subsystem's load-bearing guarantees (core/root_merge.hpp):
//
//   1. shards = 1 is THE single-coordinator path, message-for-message:
//      run_sharded_scenario with an inert root tier reproduces the
//      monolithic run_scenario byte-identically — every message of every
//      kind in every step, every protocol coin, every algorithm counter —
//      across all three native monitors and across instant AND scheduled
//      (delay / jitter / drop) networks.
//   2. Sharded exactness: at any c under the instant network the
//      deployment's answer equals the true global top-k every step
//      (strict validation), including the quota edge cases (k < c forces
//      quota-0 shards; k = n forces full shards).
//   3. Determinism: results are byte-identical for every worker count,
//      whether `workers` drives the single shard's tick scan (c = 1) or
//      steps whole shards concurrently (c > 1).
//
// Plus the sweep/CLI surface: the shards axis never enters the trial
// seed (paired comparisons across c), set_axis rejects unknown names
// with a did-you-mean hint, and `?shards=c` monitor params split
// correctly. Suite names contain "Shard" so the TSan CI job picks the
// concurrency-facing tests up by filter.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/root_merge.hpp"
#include "core/runner.hpp"
#include "exp/monitor_registry.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep_grid.hpp"
#include "sim/network_model.hpp"

namespace topkmon {
namespace {

exp::Scenario base_scenario(const std::string& monitor, std::size_t n,
                            std::size_t k, std::uint64_t seed,
                            std::size_t steps) {
  exp::Scenario sc;
  sc.monitor = monitor;
  sc.n = n;
  sc.k = k;
  sc.steps = steps;
  sc.seed = seed;
  // Wide value range: pairwise-distinct values in practice, so strict
  // set equality against the ground truth is meaningful.
  sc.stream.walk.hi = 100'000'000;
  sc.stream.iid_hi = 100'000'000;
  return sc;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.monitor_name, b.monitor_name);
  EXPECT_EQ(a.steps_executed, b.steps_executed);
  EXPECT_EQ(a.error_steps, b.error_steps);
  EXPECT_EQ(a.correct, b.correct);

  // Communication: every direction, every kind, every step.
  EXPECT_EQ(a.comm.upstream(), b.comm.upstream());
  EXPECT_EQ(a.comm.unicast(), b.comm.unicast());
  EXPECT_EQ(a.comm.broadcast(), b.comm.broadcast());
  for (std::size_t kind = 0; kind < kNumMsgKinds; ++kind) {
    EXPECT_EQ(a.comm.by_kind(static_cast<MsgKind>(kind)),
              b.comm.by_kind(static_cast<MsgKind>(kind)))
        << "kind " << msg_kind_name(static_cast<MsgKind>(kind));
  }
  EXPECT_EQ(a.comm.series(), b.comm.series());

  // Algorithm event counters.
  EXPECT_EQ(a.monitor.violation_steps, b.monitor.violation_steps);
  EXPECT_EQ(a.monitor.violations, b.monitor.violations);
  EXPECT_EQ(a.monitor.handler_calls, b.monitor.handler_calls);
  EXPECT_EQ(a.monitor.midpoint_updates, b.monitor.midpoint_updates);
  EXPECT_EQ(a.monitor.filter_resets, b.monitor.filter_resets);
  EXPECT_EQ(a.monitor.protocol_runs, b.monitor.protocol_runs);
  EXPECT_EQ(a.monitor.polls, b.monitor.polls);
}

TEST(ShardEquivalence, ShardsOneMatchesMonolithicPath) {
  const std::vector<std::string> monitors{"topk_filter", "naive", "naive_chg"};
  const std::vector<std::string> networks{"instant", "delay=1",
                                          "delay=1,jitter=2", "drop=0.2"};
  for (const auto& monitor : monitors) {
    for (const auto& network : networks) {
      exp::Scenario sc = base_scenario(monitor, 48, 6, 17, 200);
      sc.network = parse_network_spec(network);
      sc.shards = 1;
      sc.record_series = true;  // per-step message counts must match too
      if (!sc.network.is_instant()) {
        // Scheduled networks degrade the answer exactly like monolithic
        // native runs; equal error_steps below pins the answers per step.
        sc.validation = RunConfig::Validation::kWeak;
        sc.throw_on_error = false;
      }
      const RunResult mono = exp::run_scenario(sc);
      const RunResult sharded = exp::run_sharded_scenario(sc);
      expect_identical(mono, sharded, monitor + " / " + network);
      EXPECT_EQ(sharded.root_comm.total(), 0u)
          << monitor << " / " << network
          << ": inert root tier must never speak";
    }
  }
}

TEST(ShardEquivalence, ShardedExactUnderInstantNetwork) {
  // Quota edges on purpose: k = 2 < c = 7 leaves quota-0 shards; k = n
  // fills every shard; n = 53 splits unevenly across 7.
  struct Case {
    std::size_t n, k, shards;
  };
  const std::vector<Case> cases{{53, 2, 7}, {32, 32, 4}, {40, 11, 2},
                                {64, 9, 4}};
  // Random walks drift the boundary slowly; iid uniform re-rolls every
  // value each step, forcing continuous mid-run crossings so the whole
  // probe/quota-transfer/re-anchor renegotiation loop runs hot (hundreds
  // of polls over these 250 steps), not just the bootstrap.
  const std::vector<StreamFamily> families{StreamFamily::kRandomWalk,
                                           StreamFamily::kIidUniform};
  for (const auto& monitor : {"topk_filter", "naive", "naive_chg"}) {
    for (const Case& c : cases) {
      for (const StreamFamily family : families) {
        for (const std::uint64_t seed : {1ull, 9ull}) {
          exp::Scenario sc = base_scenario(monitor, c.n, c.k, seed, 250);
          sc.stream.family = family;
          sc.shards = c.shards;
          sc.validation = RunConfig::Validation::kStrict;
          sc.throw_on_error = true;  // any divergent step throws
          const RunResult r = exp::run_scenario(sc);
          SCOPED_TRACE(std::string(monitor) + " n=" + std::to_string(c.n) +
                       " k=" + std::to_string(c.k) +
                       " c=" + std::to_string(c.shards) + " fam=" +
                       std::string(family_name(family)) +
                       " seed=" + std::to_string(seed));
          EXPECT_TRUE(r.correct);
          EXPECT_EQ(r.error_steps, 0u);
          EXPECT_GT(r.root_comm.total(), 0u);  // the root tier took part
        }
      }
    }
  }
}

TEST(ShardDeterminism, WorkersInvariantAtAnyShardCount) {
  // c = 1: workers shard the single driver's tick scan. c = 4: workers
  // step whole shards concurrently. Both must be byte-identical to the
  // serial run.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    exp::Scenario sc = base_scenario("topk_filter", 96, 8, 5, 150);
    sc.shards = shards;
    if (shards > 1) {
      sc.validation = RunConfig::Validation::kStrict;
    } else {
      sc.record_series = true;  // series supported (and compared) at c = 1
    }
    sc.workers = 1;
    const RunResult serial = exp::run_scenario(sc);
    sc.workers = 8;
    const RunResult wide = exp::run_scenario(sc);
    expect_identical(serial, wide, "shards=" + std::to_string(shards));
    EXPECT_EQ(serial.root_comm.total(), wide.root_comm.total());
  }
}

TEST(ShardScenario, MonitorParamOverridesScenarioField) {
  // `?shards=c` beats Scenario::shards; `?shards=1` forces the monolithic
  // path even if the field says otherwise.
  exp::Scenario sc = base_scenario("topk_filter?shards=4", 40, 5, 3, 100);
  sc.shards = 1;
  const RunResult sharded = exp::run_scenario(sc);
  EXPECT_GT(sharded.root_comm.total(), 0u);

  exp::Scenario mono = base_scenario("topk_filter?shards=1", 40, 5, 3, 100);
  mono.shards = 4;
  const RunResult single = exp::run_scenario(mono);
  EXPECT_EQ(single.root_comm.total(), 0u);
}

TEST(ShardScenario, RejectsUnsupportedConfigurations) {
  // Adapter-backed monitors have no sharded deployment.
  exp::Scenario sc = base_scenario("recompute", 16, 4, 1, 10);
  sc.shards = 2;
  EXPECT_THROW(exp::run_scenario(sc), std::invalid_argument);

  // More shards than nodes.
  exp::Scenario wide = base_scenario("topk_filter", 4, 2, 1, 10);
  wide.shards = 8;
  EXPECT_THROW(exp::run_scenario(wide), std::invalid_argument);
}

TEST(ShardScenario, SeriesMergesAcrossShards) {
  // record_series at c > 1: the per-shard series merge element-wise into
  // one deployment-level per-step series whose sum equals the
  // node<->shard tier total.
  exp::Scenario sc = base_scenario("topk_filter", 64, 6, 2, 80);
  sc.shards = 2;
  sc.record_series = true;
  const RunResult r = exp::run_scenario(sc);
  ASSERT_TRUE(r.comm.series_enabled());
  EXPECT_EQ(r.comm.series().size(), static_cast<std::size_t>(81));
  std::uint64_t sum = 0;
  for (const std::uint64_t v : r.comm.series()) sum += v;
  EXPECT_EQ(sum, r.comm.total());
}

TEST(ShardGrid, ShardsAxisDoesNotEnterTrialSeed) {
  exp::SweepGrid grid;
  grid.ns = {32};
  grid.ks = {4};
  grid.shards = {1, 2, 4};
  grid.trials = 2;
  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 6u);
  // Expansion order: shards-major over trials; same trial index at
  // different c must replay the same seed (paired comparisons).
  for (std::size_t t = 0; t < grid.trials; ++t) {
    const auto seed = specs[t].cfg.seed;
    for (std::size_t si = 1; si < grid.shards.size(); ++si) {
      EXPECT_EQ(specs[si * grid.trials + t].cfg.seed, seed);
      EXPECT_EQ(specs[si * grid.trials + t].shards, grid.shards[si]);
    }
  }
}

TEST(ShardGrid, SetAxisParsesAndHintsUnknownNames) {
  exp::SweepGrid grid;
  grid.set_axis("shards", {"1", "8"});
  EXPECT_EQ(grid.shards, (std::vector<std::size_t>{1, 8}));

  try {
    grid.set_axis("shard", {"2"});
    FAIL() << "unknown axis accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'shards'"), std::string::npos) << msg;
  }
  EXPECT_THROW(grid.set_axis("shards", {"x"}), std::invalid_argument);
  EXPECT_THROW(grid.set_axis("shards", {}), std::invalid_argument);
}

TEST(ShardRegistry, SplitShardsParam) {
  using exp::split_shards_param;
  EXPECT_EQ(split_shards_param("topk_filter"),
            std::make_pair(std::string("topk_filter"), std::size_t{0}));
  EXPECT_EQ(split_shards_param("topk_filter?shards=4"),
            std::make_pair(std::string("topk_filter"), std::size_t{4}));
  // Other params survive, in order, with the shards key stripped.
  EXPECT_EQ(split_shards_param("topk_filter?nobeacon,shards=2"),
            std::make_pair(std::string("topk_filter?nobeacon"),
                           std::size_t{2}));
  EXPECT_EQ(split_shards_param("topk_filter?shards=2,nobeacon"),
            std::make_pair(std::string("topk_filter?nobeacon"),
                           std::size_t{2}));
  EXPECT_THROW(split_shards_param("topk_filter?shards=0"),
               std::invalid_argument);
  EXPECT_THROW(split_shards_param("topk_filter?shards=x"),
               std::invalid_argument);
}

TEST(ShardPartition, WordAlignedBalancedRanges) {
  // Boundaries fall on 64-node words whenever there are enough words to
  // go around; sizes stay balanced and cover [0, n) exactly.
  for (const std::size_t n : {4096u, 1000u, 130u, 53u}) {
    for (const std::size_t c : {1u, 2u, 7u, 16u}) {
      if (c > n) continue;
      const auto ranges = partition_shards(n, c);
      ASSERT_EQ(ranges.size(), c);
      std::size_t covered = 0;
      std::size_t min_size = n, max_size = 0;
      for (std::size_t s = 0; s < c; ++s) {
        EXPECT_EQ(ranges[s].base, covered);
        EXPECT_GT(ranges[s].size, 0u);
        covered += ranges[s].size;
        min_size = std::min(min_size, ranges[s].size);
        max_size = std::max(max_size, ranges[s].size);
        if ((n + 63) / 64 >= c && s + 1 < c) {
          EXPECT_EQ(ranges[s + 1].base % 64, 0u)
              << "n=" << n << " c=" << c << " s=" << s;
        }
      }
      EXPECT_EQ(covered, n);
      // Word-aligned splits differ by at most one 64-node word plus the
      // final word's truncation to n; the tiny-n fallback balances nodes
      // directly (spread <= 1).
      EXPECT_LE(max_size - min_size, (n + 63) / 64 >= c ? 127u : 1u)
          << "n=" << n << " c=" << c;
    }
  }
}

}  // namespace
}  // namespace topkmon
