// Tests for the multi-k monitor: every monitored boundary correct at every
// step, shared resets, degenerate configurations.
#include "core/multik_monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/ground_truth.hpp"
#include "core/runner.hpp"
#include "core/topk_monitor.hpp"
#include "streams/factory.hpp"

namespace topkmon {
namespace {

TEST(MultiK, RejectsBadKs) {
  EXPECT_THROW(MultiKMonitor({}), std::invalid_argument);
  EXPECT_THROW(MultiKMonitor({0}), std::invalid_argument);
  EXPECT_THROW(MultiKMonitor({3, 3}), std::invalid_argument);
  EXPECT_THROW(MultiKMonitor({4, 2}), std::invalid_argument);
}

TEST(MultiK, RejectsKLargerThanN) {
  MultiKMonitor m({2, 9});
  Cluster c(5, 1);
  EXPECT_THROW(m.initialize(c), std::invalid_argument);
}

TEST(MultiK, InitializationAllBoundaries) {
  Cluster c(6, 1);
  const std::vector<Value> values{60, 50, 40, 30, 20, 10};
  for (NodeId i = 0; i < 6; ++i) c.set_value(i, values[i]);
  MultiKMonitor m({1, 3, 5});
  m.initialize(c);
  EXPECT_EQ(m.topk_for(1), (std::vector<NodeId>{0}));
  EXPECT_EQ(m.topk_for(3), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(m.topk_for(5), (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0}));  // MonitorBase = smallest k
  EXPECT_THROW(m.topk_for(2), std::invalid_argument);
}

TEST(MultiK, TrailingKEqualsNIsDegenerate) {
  Cluster c(4, 1);
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, 10 * (i + 1));
  MultiKMonitor m({2, 4});
  m.initialize(c);
  EXPECT_EQ(m.topk_for(4), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(m.topk_for(2), (std::vector<NodeId>{2, 3}));
}

TEST(MultiK, OnlyKEqualsNIsFree) {
  Cluster c(3, 1);
  MultiKMonitor m({3});
  m.initialize(c);
  EXPECT_EQ(c.stats().total(), 0u);
  m.step(c, 1);
  EXPECT_EQ(c.stats().total(), 0u);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 1, 2}));
}

TEST(MultiK, SingleBoundaryMatchesGroundTruthOverWalk) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 5'000;
  auto streams = make_stream_set(spec, 10, 7);
  MultiKMonitor m({3});
  RunConfig cfg;
  cfg.n = 10;
  cfg.k = 3;
  cfg.steps = 800;
  cfg.seed = 7;
  const auto r = run_monitor(m, streams, cfg);
  EXPECT_TRUE(r.correct);
}

TEST(MultiK, AllBoundariesCorrectEveryStep) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 4'000;
  auto streams = make_stream_set(spec, 12, 9);
  Cluster c(12, 9);
  MultiKMonitor m({1, 4, 8});
  for (NodeId i = 0; i < 12; ++i) c.set_value(i, streams.advance(i));
  m.initialize(c);
  for (TimeStep t = 1; t <= 800; ++t) {
    for (NodeId i = 0; i < 12; ++i) c.set_value(i, streams.advance(i));
    m.step(c, t);
    for (const std::size_t k : {1u, 4u, 8u}) {
      ASSERT_EQ(m.topk_for(k), true_topk_set(c, k)) << "k=" << k << " t=" << t;
    }
  }
}

TEST(MultiK, CorrectOnJumpyStreams) {
  // Bursts regularly cause multi-band jumps -> shared resets; answers must
  // stay exact throughout.
  StreamSpec spec;
  spec.family = StreamFamily::kBursty;
  spec.bursty.p_enter_burst = 0.05;
  spec.bursty.lo = 0;
  spec.bursty.hi = 50'000;  // confined so bursts jump across bands
  spec.bursty.start = 25'000;
  spec.bursty.burst_step = 20'000;
  auto streams = make_stream_set(spec, 10, 11);
  Cluster c(10, 11);
  MultiKMonitor m({2, 5});
  for (NodeId i = 0; i < 10; ++i) c.set_value(i, streams.advance(i));
  m.initialize(c);
  for (TimeStep t = 1; t <= 600; ++t) {
    for (NodeId i = 0; i < 10; ++i) c.set_value(i, streams.advance(i));
    m.step(c, t);
    ASSERT_EQ(m.topk_for(2), true_topk_set(c, 2)) << "t=" << t;
    ASSERT_EQ(m.topk_for(5), true_topk_set(c, 5)) << "t=" << t;
  }
  EXPECT_GT(m.monitor_stats().filter_resets, 1u);
}

TEST(MultiK, QuietWhenValuesDriftInsideBands) {
  Cluster c(6, 13);
  const std::vector<Value> values{6'000, 5'000, 4'000, 3'000, 2'000, 1'000};
  for (NodeId i = 0; i < 6; ++i) c.set_value(i, values[i]);
  MultiKMonitor m({2, 4});
  m.initialize(c);
  const auto baseline = c.stats().total();
  c.set_value(0, 6'050);
  c.set_value(3, 2'960);
  m.step(c, 1);
  EXPECT_EQ(c.stats().total(), baseline);
}

TEST(MultiK, SharedResetCheaperThanIndependentMonitors) {
  // Compare against m independent TopkFilterMonitor instances on the same
  // reset-heavy workload (iid): the shared k_max+1 selection should beat
  // the sum of per-k selections.
  StreamSpec spec;
  spec.family = StreamFamily::kIidUniform;
  constexpr std::size_t kN = 64;
  const std::vector<std::size_t> ks{2, 8, 16};

  auto multik_streams = make_stream_set(spec, kN, 15);
  MultiKMonitor multi(ks);
  RunConfig cfg;
  cfg.n = kN;
  cfg.k = ks.front();
  cfg.steps = 150;
  cfg.seed = 15;
  const auto rm = run_monitor(multi, multik_streams, cfg);

  std::uint64_t independent_total = 0;
  for (const std::size_t k : ks) {
    auto streams = make_stream_set(spec, kN, 15);
    TopkFilterMonitor single(k);
    RunConfig c1 = cfg;
    c1.k = k;
    independent_total += run_monitor(single, streams, c1).comm.total();
  }
  EXPECT_LT(rm.comm.total(), independent_total);
}

TEST(MultiK, DeterministicAcrossRuns) {
  auto run_once_total = [] {
    StreamSpec spec;
    spec.family = StreamFamily::kSinusoidal;
    auto streams = make_stream_set(spec, 10, 17);
    MultiKMonitor m({2, 5});
    RunConfig cfg;
    cfg.n = 10;
    cfg.k = 2;
    cfg.steps = 300;
    cfg.seed = 17;
    return run_monitor(m, streams, cfg).comm.total();
  };
  EXPECT_EQ(run_once_total(), run_once_total());
}

}  // namespace
}  // namespace topkmon
