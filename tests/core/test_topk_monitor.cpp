// Tests for Algorithm 1 (TopkFilterMonitor): correctness on hand-crafted
// traces, filter validity (Lemma 2.2) at quiescence, reset/halving
// behaviour, and message accounting.
#include "core/topk_monitor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/ground_truth.hpp"
#include "core/runner.hpp"
#include "streams/factory.hpp"
#include "streams/trace.hpp"

namespace topkmon {
namespace {

/// Applies one step's values and runs the monitor step.
void apply(Cluster& c, TopkFilterMonitor& m, const std::vector<Value>& values,
           TimeStep t) {
  for (NodeId i = 0; i < values.size(); ++i) c.set_value(i, values[i]);
  m.step(c, t);
}

std::vector<Value> snapshot(const Cluster& c) {
  std::vector<Value> v(c.size());
  for (NodeId i = 0; i < c.size(); ++i) v[i] = c.value(i);
  return v;
}

TEST(TopkMonitor, RejectsBadK) {
  EXPECT_THROW(TopkFilterMonitor(0), std::invalid_argument);
  TopkFilterMonitor m(5);
  Cluster c(3, 1);
  EXPECT_THROW(m.initialize(c), std::invalid_argument);
}

TEST(TopkMonitor, InitializationFindsTopK) {
  Cluster c(5, 1);
  const std::vector<Value> values{30, 10, 50, 20, 40};
  for (NodeId i = 0; i < 5; ++i) c.set_value(i, values[i]);
  TopkFilterMonitor m(2);
  m.initialize(c);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{2, 4}));
  // Boundary lies strictly between v_2 = 40 and v_3 = 30.
  EXPECT_GE(m.boundary(), 30);
  EXPECT_LE(m.boundary(), 40);
  EXPECT_EQ(m.monitor_stats().filter_resets, 1u);
}

TEST(TopkMonitor, FiltersValidAfterInitialization) {
  Cluster c(6, 3);
  const std::vector<Value> values{1, 6, 3, 9, 2, 8};
  for (NodeId i = 0; i < 6; ++i) c.set_value(i, values[i]);
  TopkFilterMonitor m(3);
  m.initialize(c);
  EXPECT_TRUE(
      is_valid_filter_set(snapshot(c), m.filters(), m.membership()));
}

TEST(TopkMonitor, NoViolationNoMessages) {
  Cluster c(4, 1);
  {
    const std::vector<Value> values{100, 80, 20, 10};
    for (NodeId i = 0; i < 4; ++i) c.set_value(i, values[i]);
  }
  TopkFilterMonitor m(2);
  m.initialize(c);
  const auto after_init = c.stats().total();
  // Values drift but stay on their side of the boundary.
  apply(c, m, {95, 85, 25, 5}, 1);
  apply(c, m, {99, 81, 22, 12}, 2);
  EXPECT_EQ(c.stats().total(), after_init);
  EXPECT_EQ(m.monitor_stats().violation_steps, 0u);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 1}));
}

TEST(TopkMonitor, DetectsSwapAcrossBoundary) {
  Cluster c(4, 7);
  const std::vector<Value> init{100, 80, 20, 10};
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, init[i]);
  TopkFilterMonitor m(2);
  m.initialize(c);
  // Node 3 rockets to the top; node 1 collapses.
  apply(c, m, {100, 5, 20, 500}, 1);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 3}));
  EXPECT_GE(m.monitor_stats().filter_resets, 2u);  // init + this step
  EXPECT_TRUE(is_valid_filter_set(snapshot(c), m.filters(), m.membership()));
}

TEST(TopkMonitor, RisingOutsiderOnly) {
  Cluster c(4, 9);
  const std::vector<Value> init{100, 80, 20, 10};
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, init[i]);
  TopkFilterMonitor m(2);
  m.initialize(c);
  apply(c, m, {100, 80, 20, 300}, 1);  // node 3 overtakes everything
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 3}));
}

TEST(TopkMonitor, FallingMemberOnly) {
  Cluster c(4, 11);
  const std::vector<Value> init{100, 80, 20, 10};
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, init[i]);
  TopkFilterMonitor m(2);
  m.initialize(c);
  apply(c, m, {100, 1, 20, 10}, 1);  // node 1 collapses below node 2
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 2}));
}

TEST(TopkMonitor, MidpointUpdateWithoutSetChange) {
  Cluster c(4, 13);
  const std::vector<Value> init{1000, 800, 200, 100};
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, init[i]);
  TopkFilterMonitor m(2);
  m.initialize(c);
  const Value m0 = m.boundary();
  // Node 1 sinks toward the boundary but stays above node 2: set unchanged,
  // so the handler should do a midpoint update, not a reset.
  apply(c, m, {1000, static_cast<Value>(m0 - 1), 200, 100}, 1);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(m.monitor_stats().filter_resets, 1u);  // only the init reset
  EXPECT_GE(m.monitor_stats().midpoint_updates, 1u);
  EXPECT_LT(m.boundary(), m0);  // boundary moved down toward T-
  EXPECT_TRUE(is_valid_filter_set(snapshot(c), m.filters(), m.membership()));
}

TEST(TopkMonitor, GapHalvingBoundsViolationSteps) {
  // A member creeps down by one each step from a huge initial gap; between
  // resets there can be at most ~log Δ handler calls (Theorem 3.3's
  // counting argument). With Δ = 2^20 expect <= ~21 violation steps.
  Cluster c(2, 17);
  const Value kGap = 1 << 20;
  c.set_value(0, kGap);
  c.set_value(1, 0);
  TopkFilterMonitor m(1);
  m.initialize(c);
  std::uint64_t violation_steps = 0;
  Value v0 = kGap;
  for (TimeStep t = 1; t <= 60; ++t) {
    // Keep sinking node 0 just below the current boundary.
    if (v0 > m.boundary() && m.boundary() > 1) {
      v0 = m.boundary() - 1;
    }
    c.set_value(0, v0);
    const auto before = m.monitor_stats().violation_steps;
    m.step(c, t);
    violation_steps += m.monitor_stats().violation_steps - before;
    EXPECT_EQ(m.topk(), (std::vector<NodeId>{0}));
    if (m.monitor_stats().filter_resets > 1) break;  // reached the bottom
  }
  EXPECT_LE(violation_steps, 25u);
}

TEST(TopkMonitor, DegenerateKEqualsN) {
  Cluster c(3, 1);
  c.set_value(0, 5);
  c.set_value(1, 3);
  c.set_value(2, 8);
  TopkFilterMonitor m(3);
  m.initialize(c);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(c.stats().total(), 0u);
  apply(c, m, {1, 2, 3}, 1);
  EXPECT_EQ(c.stats().total(), 0u);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 1, 2}));
}

TEST(TopkMonitor, KEqualsOneMaxTracking) {
  Cluster c(8, 21);
  const std::vector<Value> init{10, 20, 30, 40, 50, 60, 70, 80};
  for (NodeId i = 0; i < 8; ++i) c.set_value(i, init[i]);
  TopkFilterMonitor m(1);
  m.initialize(c);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{7}));
  apply(c, m, {10, 20, 30, 40, 50, 60, 900, 80}, 1);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{6}));
}

TEST(TopkMonitor, BothSidesViolateSimultaneously) {
  Cluster c(4, 23);
  const std::vector<Value> init{100, 80, 20, 10};
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, init[i]);
  TopkFilterMonitor m(2);
  m.initialize(c);
  // Node 1 falls below the boundary while node 2 rises above it.
  const Value b = m.boundary();
  apply(c, m, {100, b - 5, b + 5, 10}, 1);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 2}));
  EXPECT_TRUE(is_valid_filter_set(snapshot(c), m.filters(), m.membership()));
}

TEST(TopkMonitor, TPlusAndTMinusTracked) {
  Cluster c(2, 25);
  c.set_value(0, 1000);
  c.set_value(1, 0);
  TopkFilterMonitor m(1);
  m.initialize(c);
  EXPECT_EQ(m.t_plus(), 1000);
  EXPECT_EQ(m.t_minus(), 0);
  // Sink node 0 a bit: T+ must follow down.
  apply(c, m, {static_cast<Value>(m.boundary() - 1), 0}, 1);
  EXPECT_LT(m.t_plus(), 1000);
  EXPECT_GE(m.t_plus(), m.t_minus());
}

TEST(TopkMonitor, LongRandomWalkStaysCorrect) {
  // End-to-end guard: 2000 steps on random walks, strict validation
  // inside the runner (throws on first divergence).
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 2'000;
  auto streams = make_stream_set(spec, 12, 77);
  TopkFilterMonitor m(3);
  RunConfig cfg;
  cfg.n = 12;
  cfg.k = 3;
  cfg.steps = 2'000;
  cfg.seed = 77;
  const auto result = run_monitor(m, streams, cfg);
  EXPECT_TRUE(result.correct);
  EXPECT_GT(result.comm.total(), 0u);
}

TEST(TopkMonitor, SuppressedBeaconsStillCorrect) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 5'000;
  auto streams = make_stream_set(spec, 10, 31);
  TopkFilterMonitor::Options opts;
  opts.suppress_idle_broadcasts = true;
  TopkFilterMonitor m(2, opts);
  RunConfig cfg;
  cfg.n = 10;
  cfg.k = 2;
  cfg.steps = 800;
  cfg.seed = 31;
  const auto result = run_monitor(m, streams, cfg);
  EXPECT_TRUE(result.correct);
}

}  // namespace
}  // namespace topkmon
