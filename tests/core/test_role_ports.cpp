// The tentpole proof of the five-port PR: slack, dominance, approx,
// multi_k and ordered run as native CoordinatorAlgo/NodeAlgo role pairs
// and are message-for-message and coin-flip-identical to their lock-step
// MonitorBase twins under the instant network, across a stream-family ×
// shape × seed grid — then run green under scheduled networks
// (delay / jitter / drop), byte-identically under --workers 8, and
// through a light e19-style churn plan. The three pre-existing ports
// (topk_filter, naive, naive_chg) re-run through the same shared
// harness so one comparison standard covers the whole zoo.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "role_port_harness.hpp"

namespace topkmon {
namespace {

using harness::Shape;
using harness::expect_identical;
using harness::expect_twin_lockstep_parity;
using harness::results_identical;
using harness::run_lockstep;
using harness::run_native;

std::string label(const std::string& spec, Shape s, const std::string& family,
                  std::uint64_t seed) {
  return spec + " n=" + std::to_string(s.n) + " k=" + std::to_string(s.k) +
         " fam=" + family + " seed=" + std::to_string(seed);
}

void expect_grid_equivalence(const std::vector<std::string>& specs,
                             const std::vector<Shape>& shapes,
                             std::size_t steps = 250) {
  const std::vector<std::string> families{"random_walk", "iid_uniform",
                                          "bursty"};
  for (const std::string& spec : specs) {
    for (const Shape s : shapes) {
      for (const std::string& family : families) {
        for (const std::uint64_t seed : {1ull, 7ull}) {
          const auto lockstep = run_lockstep(spec, family, s, seed, steps);
          const auto native = run_native(spec, family, s, seed, steps);
          expect_identical(lockstep, native, label(spec, s, family, seed));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Instant-network differential equivalence, port by port
// ---------------------------------------------------------------------------

TEST(RolePorts, SlackMatchesLockstepAcrossGrid) {
  expect_grid_equivalence({"slack", "slack?alpha=0.05", "slack?adaptive"},
                          {{16, 4}, {12, 3}});
}

TEST(RolePorts, DominanceMatchesLockstepAcrossGrid) {
  expect_grid_equivalence({"dominance"}, {{16, 4}, {9, 2}});
}

TEST(RolePorts, ApproxMatchesLockstepAcrossGrid) {
  expect_grid_equivalence({"approx?eps=0", "approx?eps=64", "approx?eps=2000"},
                          {{16, 4}});
}

TEST(RolePorts, MultiKMatchesLockstepAcrossGrid) {
  expect_grid_equivalence({"multi_k", "multi_k?ks=2+8", "multi_k?ks=1+4+12"},
                          {{16, 4}});
}

TEST(RolePorts, OrderedMatchesLockstepAcrossGrid) {
  expect_grid_equivalence({"ordered"}, {{16, 4}, {10, 5}});
}

TEST(RolePorts, ExistingPortsStillMatchThroughSharedHarness) {
  expect_grid_equivalence({"topk_filter", "naive", "naive_chg"}, {{16, 4}});
}

TEST(RolePorts, DegenerateShapesMatch) {
  // k == n (no outsiders), k == 1 (no order structure to maintain), and
  // tiny n exercise every port's boundary-free and single-band paths.
  expect_grid_equivalence({"slack", "dominance", "ordered", "approx?eps=64"},
                          {{6, 6}, {8, 1}}, 150);
  expect_grid_equivalence({"multi_k?ks=1+8"}, {{8, 1}}, 150);
}

TEST(RolePorts, BeaconSuppressionVariantsMatch) {
  expect_grid_equivalence({"ordered?nobeacon", "multi_k?ks=2+8,nobeacon",
                           "approx?eps=64,nobeacon"},
                          {{16, 4}}, 200);
}

// ---------------------------------------------------------------------------
// Coin-flip identity: per-step answers + final RNG state of every node
// ---------------------------------------------------------------------------

TEST(RolePorts, TwinDriveProvesAnswerAndRngParity) {
  const Shape s{16, 4};
  for (const std::string spec :
       {"topk_filter", "naive", "naive_chg", "slack", "slack?adaptive",
        "dominance", "approx?eps=64", "multi_k?ks=2+8", "ordered"}) {
    expect_twin_lockstep_parity(spec, "random_walk", s, 5, 250);
    expect_twin_lockstep_parity(spec, "bursty", s, 9, 250);
  }
}

// ---------------------------------------------------------------------------
// Scheduled networks: the ports must run (and stay live) once messages
// are delayed, jittered, and dropped — the regime the lock-step twins
// cannot enter at all.
// ---------------------------------------------------------------------------

const std::vector<std::string>& new_port_specs() {
  // multi_k's answer is the top-k of its *smallest* monitored k, so the
  // scheduled-network / churn scenarios (validated against the scenario
  // k) pin ks to start at the scenario's k = 4.
  static const std::vector<std::string> specs{
      "slack", "dominance", "approx?eps=64", "multi_k?ks=4+8", "ordered"};
  return specs;
}

TEST(RolePorts, NewPortsRunGreenOnScheduledNetworks) {
  for (const std::string& spec : new_port_specs()) {
    for (const std::string network : {"delay=2", "jitter=2", "drop=0.02"}) {
      SCOPED_TRACE(spec + " / " + network);
      const auto r = run_native(spec, "random_walk", {16, 4}, 3, 300,
                                RunConfig::Validation::kWeak, network);
      EXPECT_EQ(r.steps_executed, 301u);
      EXPECT_GT(r.comm.total(), 0u);
      // Delay and jitter only lag the answer; the monitor must keep
      // converging rather than wedge into a permanently wrong state.
      EXPECT_LT(r.error_rate(), 0.9) << "monitor wedged under " << network;
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel tick loop: --workers 8 must be byte-identical to serial
// ---------------------------------------------------------------------------

TEST(RolePorts, NewPortsWorkersByteIdenticalToSerial) {
  for (const std::string& spec : new_port_specs()) {
    SCOPED_TRACE(spec);
    const auto serial = run_native(spec, "random_walk", {24, 5}, 13, 200);
    const auto parallel =
        run_native(spec, "random_walk", {24, 5}, 13, 200,
                   RunConfig::Validation::kWeak, "instant", /*workers=*/8);
    expect_identical(serial, parallel, spec + " workers=8");
    EXPECT_TRUE(results_identical(serial, parallel));
  }
}

// ---------------------------------------------------------------------------
// Fault plans: a light e19-style churn plan (crash, outage, recovery)
// must complete with the answer re-converging after the heal.
// ---------------------------------------------------------------------------

TEST(RolePorts, NewPortsSurviveLightChurn) {
  for (const std::string& spec : new_port_specs()) {
    SCOPED_TRACE(spec);
    const auto r =
        run_native(spec, "random_walk", {16, 4}, 11, 300,
                   RunConfig::Validation::kWeak, "instant", /*workers=*/1,
                   /*faults=*/"churn?crash=1@80,recover=1@160");
    EXPECT_EQ(r.steps_executed, 301u);
    // Once the crashed node has rejoined and re-synced, the answer must
    // go clean again: no errors over the final third of the run.
    EXPECT_EQ(r.error_steps_since(220), 0u) << "never re-converged";
  }
}

}  // namespace
}  // namespace topkmon
