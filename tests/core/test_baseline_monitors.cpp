// Tests for the naive, recompute and slack baseline monitors.
#include <gtest/gtest.h>

#include <vector>

#include "core/naive_monitor.hpp"
#include "core/recompute_monitor.hpp"
#include "core/runner.hpp"
#include "core/slack_monitor.hpp"
#include "streams/factory.hpp"

namespace topkmon {
namespace {

RunConfig small_cfg(std::size_t n, std::size_t k, std::size_t steps,
                    std::uint64_t seed) {
  RunConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.steps = steps;
  cfg.seed = seed;
  return cfg;
}

StreamSet walk_streams(std::size_t n, std::uint64_t seed, Value step = 2'000) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = step;
  return make_stream_set(spec, n, seed);
}

// ---------------------------------------------------------------- naive --

TEST(NaiveMonitor, RejectsBadK) {
  EXPECT_THROW(NaiveMonitor(0), std::invalid_argument);
}

TEST(NaiveMonitor, AlwaysCorrectOnWalks) {
  auto streams = walk_streams(8, 5);
  NaiveMonitor m(3);
  const auto result = run_monitor(m, streams, small_cfg(8, 3, 300, 5));
  EXPECT_TRUE(result.correct);
}

TEST(NaiveMonitor, SendsNPerStep) {
  auto streams = walk_streams(8, 7);
  NaiveMonitor m(2);
  const auto result = run_monitor(m, streams, small_cfg(8, 2, 100, 7));
  // Every node reports every step (101 steps including init).
  EXPECT_EQ(result.comm.upstream(), 8u * 101u);
  EXPECT_EQ(result.comm.broadcast(), 0u);
}

TEST(NaiveMonitor, OnChangeVariantSendsLess) {
  // Rotating-max streams keep most nodes constant most of the time.
  StreamSpec spec;
  spec.family = StreamFamily::kRotatingMax;
  spec.enforce_distinct = false;
  auto s1 = make_stream_set(spec, 8, 9);
  NaiveMonitor every(2);
  const auto r1 = run_monitor(every, s1, small_cfg(8, 2, 200, 9));

  auto s2 = make_stream_set(spec, 8, 9);
  NaiveMonitor::Options opts;
  opts.send_on_change_only = true;
  NaiveMonitor on_change(2, opts);
  const auto r2 = run_monitor(on_change, s2, small_cfg(8, 2, 200, 9));

  EXPECT_TRUE(r1.correct);
  EXPECT_TRUE(r2.correct);
  EXPECT_LT(r2.comm.total(), r1.comm.total() / 2);
}

TEST(NaiveMonitor, NamesDistinguishVariants) {
  NaiveMonitor a(1);
  NaiveMonitor::Options opts;
  opts.send_on_change_only = true;
  NaiveMonitor b(1, opts);
  EXPECT_EQ(a.name(), "naive");
  EXPECT_EQ(b.name(), "naive_on_change");
}

// ------------------------------------------------------------ recompute --

TEST(RecomputeMonitor, RejectsBadK) {
  EXPECT_THROW(RecomputeMonitor(0), std::invalid_argument);
}

TEST(RecomputeMonitor, AlwaysCorrectOnWalks) {
  auto streams = walk_streams(10, 11);
  RecomputeMonitor m(3);
  const auto result = run_monitor(m, streams, small_cfg(10, 3, 300, 11));
  EXPECT_TRUE(result.correct);
}

TEST(RecomputeMonitor, AlwaysCorrectOnRotatingMax) {
  StreamSpec spec;
  spec.family = StreamFamily::kRotatingMax;
  auto streams = make_stream_set(spec, 8, 13);
  RecomputeMonitor m(2);
  const auto result = run_monitor(m, streams, small_cfg(8, 2, 200, 13));
  EXPECT_TRUE(result.correct);
}

TEST(RecomputeMonitor, CostsEveryStepEvenWhenStill) {
  // Constant values: filters would be silent, recompute still pays.
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 0;
  auto streams = make_stream_set(spec, 8, 15);
  RecomputeMonitor m(2);
  const auto result = run_monitor(m, streams, small_cfg(8, 2, 100, 15));
  EXPECT_TRUE(result.correct);
  // k protocol runs per step, each with >= 1 report + >= 1 announce.
  EXPECT_GE(result.comm.total(), 100u * 2u * 2u);
  EXPECT_EQ(result.monitor.protocol_runs, 101u * 2u);
}

// ---------------------------------------------------------------- slack --

TEST(SlackMonitor, RejectsBadParams) {
  EXPECT_THROW(SlackMonitor(0), std::invalid_argument);
  SlackMonitor::Options bad;
  bad.alpha = 0.0;
  EXPECT_THROW(SlackMonitor(1, bad), std::invalid_argument);
  bad.alpha = 1.0;
  EXPECT_THROW(SlackMonitor(1, bad), std::invalid_argument);
}

TEST(SlackMonitor, NamesDistinguishVariants) {
  SlackMonitor fixed(1);
  SlackMonitor::Options opts;
  opts.adaptive = true;
  SlackMonitor adaptive(1, opts);
  EXPECT_EQ(fixed.name(), "slack_fixed");
  EXPECT_EQ(adaptive.name(), "slack_adaptive");
}

TEST(SlackMonitor, CorrectOnWalks) {
  auto streams = walk_streams(10, 17);
  SlackMonitor m(3);
  const auto result = run_monitor(m, streams, small_cfg(10, 3, 500, 17));
  EXPECT_TRUE(result.correct);
}

TEST(SlackMonitor, CorrectWithAsymmetricAlpha) {
  for (const double alpha : {0.1, 0.9}) {
    auto streams = walk_streams(10, 19);
    SlackMonitor::Options opts;
    opts.alpha = alpha;
    SlackMonitor m(3, opts);
    const auto result = run_monitor(m, streams, small_cfg(10, 3, 400, 19));
    EXPECT_TRUE(result.correct) << "alpha=" << alpha;
  }
}

TEST(SlackMonitor, AdaptiveVariantCorrect) {
  auto streams = walk_streams(10, 21);
  SlackMonitor::Options opts;
  opts.adaptive = true;
  SlackMonitor m(3, opts);
  const auto result = run_monitor(m, streams, small_cfg(10, 3, 500, 21));
  EXPECT_TRUE(result.correct);
}

TEST(SlackMonitor, BoundaryWithinGapAfterInit) {
  Cluster c(4, 23);
  c.set_value(0, 100);
  c.set_value(1, 80);
  c.set_value(2, 20);
  c.set_value(3, 10);
  SlackMonitor m(2);
  m.initialize(c);
  EXPECT_GE(m.boundary(), 20);
  EXPECT_LE(m.boundary(), 80);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 1}));
}

TEST(SlackMonitor, DegenerateKEqualsNSilent) {
  Cluster c(3, 1);
  c.set_value(0, 5);
  c.set_value(1, 6);
  c.set_value(2, 7);
  SlackMonitor m(3);
  m.initialize(c);
  EXPECT_EQ(c.stats().total(), 0u);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 1, 2}));
}

TEST(SlackMonitor, UsesPollsNotProtocols) {
  auto streams = walk_streams(10, 25, /*step=*/20'000);
  SlackMonitor m(3);
  const auto result = run_monitor(m, streams, small_cfg(10, 3, 300, 25));
  EXPECT_TRUE(result.correct);
  EXPECT_GT(result.monitor.polls, 0u);
  EXPECT_EQ(result.monitor.protocol_runs, 0u);
}

}  // namespace
}  // namespace topkmon
