// Tests for the experiment runner and competitive-ratio helper.
#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "core/naive_monitor.hpp"
#include "core/topk_monitor.hpp"
#include "streams/factory.hpp"
#include "streams/trace.hpp"

namespace topkmon {
namespace {

/// A deliberately wrong monitor: always claims {0, .., k-1}.
class ConstantMonitor final : public MonitorBase {
 public:
  explicit ConstantMonitor(std::size_t k) {
    for (NodeId i = 0; i < k; ++i) ids_.push_back(i);
  }
  std::string_view name() const override { return "constant"; }
  void initialize(Cluster&) override {}
  void step(Cluster&, TimeStep) override {}
  const std::vector<NodeId>& topk() const override { return ids_; }

 private:
  std::vector<NodeId> ids_;
};

TEST(Runner, RejectsMismatchedStreamCount) {
  StreamSpec spec;
  auto streams = make_stream_set(spec, 4, 1);
  TopkFilterMonitor m(2);
  RunConfig cfg;
  cfg.n = 8;  // != 4 streams
  cfg.k = 2;
  EXPECT_THROW(run_monitor(m, streams, cfg), std::invalid_argument);
}

TEST(Runner, RejectsBadK) {
  StreamSpec spec;
  auto streams = make_stream_set(spec, 4, 1);
  TopkFilterMonitor m(2);
  RunConfig cfg;
  cfg.n = 4;
  cfg.k = 0;
  EXPECT_THROW(run_monitor(m, streams, cfg), std::invalid_argument);
  cfg.k = 5;
  EXPECT_THROW(run_monitor(m, streams, cfg), std::invalid_argument);
}

TEST(Runner, ExecutesConfiguredSteps) {
  StreamSpec spec;
  auto streams = make_stream_set(spec, 4, 2);
  TopkFilterMonitor m(2);
  RunConfig cfg;
  cfg.n = 4;
  cfg.k = 2;
  cfg.steps = 77;
  cfg.seed = 2;
  const auto r = run_monitor(m, streams, cfg);
  EXPECT_EQ(r.steps_executed, 78u);  // init + 77 steps
  EXPECT_EQ(r.monitor_name, "topk_filter");
}

TEST(Runner, ThrowsOnDivergenceByDefault) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 50'000;
  auto streams = make_stream_set(spec, 6, 3);
  ConstantMonitor wrong(2);
  RunConfig cfg;
  cfg.n = 6;
  cfg.k = 2;
  cfg.steps = 100;
  cfg.seed = 3;
  EXPECT_THROW(run_monitor(wrong, streams, cfg), std::logic_error);
}

TEST(Runner, RecordsDivergenceWhenNotThrowing) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 50'000;
  auto streams = make_stream_set(spec, 6, 3);
  ConstantMonitor wrong(2);
  RunConfig cfg;
  cfg.n = 6;
  cfg.k = 2;
  cfg.steps = 100;
  cfg.seed = 3;
  const auto r = run_monitor(wrong, streams, cfg, /*throw_on_error=*/false);
  EXPECT_FALSE(r.correct);
  EXPECT_TRUE(r.first_error_step.has_value());
}

TEST(Runner, ValidationOffAcceptsAnything) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 50'000;
  auto streams = make_stream_set(spec, 6, 3);
  ConstantMonitor wrong(2);
  RunConfig cfg;
  cfg.n = 6;
  cfg.k = 2;
  cfg.steps = 50;
  cfg.seed = 3;
  cfg.validation = RunConfig::Validation::kOff;
  const auto r = run_monitor(wrong, streams, cfg);
  EXPECT_TRUE(r.correct);
}

TEST(Runner, TraceRecordingMatchesStreams) {
  StreamSpec spec;
  auto streams = make_stream_set(spec, 3, 5);
  auto replay = make_stream_set(spec, 3, 5);
  TopkFilterMonitor m(1);
  RunConfig cfg;
  cfg.n = 3;
  cfg.k = 1;
  cfg.steps = 20;
  cfg.seed = 5;
  cfg.record_trace = true;
  const auto r = run_monitor(m, streams, cfg);
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_EQ(r.trace->steps(), 21u);
  for (std::size_t t = 0; t <= 20; ++t) {
    for (NodeId i = 0; i < 3; ++i) {
      EXPECT_EQ(r.trace->at(t, i), replay.advance(i));
    }
  }
}

TEST(Runner, SeriesRecordingWorks) {
  StreamSpec spec;
  auto streams = make_stream_set(spec, 4, 7);
  NaiveMonitor m(2);
  RunConfig cfg;
  cfg.n = 4;
  cfg.k = 2;
  cfg.steps = 10;
  cfg.seed = 7;
  cfg.record_series = true;
  const auto r = run_monitor(m, streams, cfg);
  ASSERT_EQ(r.comm.series().size(), 11u);
  for (const auto per_step : r.comm.series()) {
    EXPECT_EQ(per_step, 4u);  // naive: n messages every step
  }
}

TEST(Runner, CompetitiveRatioRequiresTrace) {
  RunResult r;
  EXPECT_THROW(competitive_ratio(r, 2), std::invalid_argument);
}

TEST(Runner, CompetitiveRatioFiniteOnSilentTrace) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 0;  // frozen values: OPT needs zero updates
  auto streams = make_stream_set(spec, 4, 9);
  TopkFilterMonitor m(2);
  RunConfig cfg;
  cfg.n = 4;
  cfg.k = 2;
  cfg.steps = 50;
  cfg.seed = 9;
  cfg.record_trace = true;
  const auto r = run_monitor(m, streams, cfg);
  const double ratio = competitive_ratio(r, 2);
  EXPECT_GT(ratio, 0.0);  // algorithm paid initialization, OPT epsilon
}

TEST(Runner, MessagesPerStep) {
  StreamSpec spec;
  auto streams = make_stream_set(spec, 4, 11);
  NaiveMonitor m(1);
  RunConfig cfg;
  cfg.n = 4;
  cfg.k = 1;
  cfg.steps = 9;
  cfg.seed = 11;
  const auto r = run_monitor(m, streams, cfg);
  EXPECT_DOUBLE_EQ(r.messages_per_step(), 4.0);
}

}  // namespace
}  // namespace topkmon
