// Edge-case battery shared across all monitoring algorithms: tiny systems,
// extreme magnitudes, frozen streams, step discontinuities, negative
// values, and n = 1 degeneracies.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "core/approx_monitor.hpp"
#include "core/dominance_monitor.hpp"
#include "core/multik_monitor.hpp"
#include "core/naive_monitor.hpp"
#include "core/ordered_topk_monitor.hpp"
#include "core/recompute_monitor.hpp"
#include "core/ground_truth.hpp"
#include "core/runner.hpp"
#include "core/slack_monitor.hpp"
#include "core/topk_monitor.hpp"
#include "streams/factory.hpp"
#include "streams/trace.hpp"

namespace topkmon {
namespace {

std::unique_ptr<MonitorBase> make_monitor(const std::string& which,
                                          std::size_t k) {
  if (which == "topk_filter") return std::make_unique<TopkFilterMonitor>(k);
  if (which == "naive") return std::make_unique<NaiveMonitor>(k);
  if (which == "recompute") return std::make_unique<RecomputeMonitor>(k);
  if (which == "dominance") return std::make_unique<DominanceMonitor>(k);
  if (which == "slack") return std::make_unique<SlackMonitor>(k);
  if (which == "ordered") return std::make_unique<OrderedTopkMonitor>(k);
  if (which == "approx") return std::make_unique<ApproxTopkMonitor>(k);
  throw std::invalid_argument("unknown monitor " + which);
}

const std::string kAllMonitors[] = {"topk_filter", "naive",   "recompute",
                              "dominance",   "slack",   "ordered",
                              "approx"};

class AllMonitors : public ::testing::TestWithParam<std::string> {};

TEST_P(AllMonitors, SingleNodeSystem) {
  auto monitor = make_monitor(GetParam(), 1);
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  auto streams = make_stream_set(spec, 1, 3);
  RunConfig cfg;
  cfg.n = 1;
  cfg.k = 1;
  cfg.steps = 50;
  cfg.seed = 3;
  const auto r = run_monitor(*monitor, streams, cfg);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(monitor->topk(), (std::vector<NodeId>{0}));
}

TEST_P(AllMonitors, TwoNodesRepeatedSwaps) {
  auto monitor = make_monitor(GetParam(), 1);
  TraceMatrix trace(2, 40);
  for (std::size_t t = 0; t < 40; ++t) {
    trace.at(t, 0) = (t % 2 == 0) ? 100 : 10;
    trace.at(t, 1) = (t % 2 == 0) ? 10 : 100;
  }
  auto streams = trace.to_stream_set();
  RunConfig cfg;
  cfg.n = 2;
  cfg.k = 1;
  cfg.steps = 39;
  cfg.seed = 5;
  const auto r = run_monitor(*monitor, streams, cfg);
  EXPECT_TRUE(r.correct);
}

TEST_P(AllMonitors, FrozenStreamsGoQuietAfterInit) {
  auto monitor = make_monitor(GetParam(), 2);
  TraceMatrix trace(6, 30);
  for (std::size_t t = 0; t < 30; ++t) {
    for (NodeId i = 0; i < 6; ++i) {
      trace.at(t, i) = 100 * (static_cast<Value>(i) + 1);
    }
  }
  auto streams = trace.to_stream_set();
  Cluster c(6, 7);
  for (NodeId i = 0; i < 6; ++i) c.set_value(i, streams.advance(i));
  monitor->initialize(c);
  const auto after_init = c.stats().total();
  for (TimeStep t = 1; t < 30; ++t) {
    for (NodeId i = 0; i < 6; ++i) c.set_value(i, streams.advance(i));
    monitor->step(c, t);
  }
  if (GetParam() == "naive" || GetParam() == "recompute") {
    EXPECT_GT(c.stats().total(), after_init);  // these always pay
  } else {
    EXPECT_EQ(c.stats().total(), after_init)
        << GetParam() << " must be silent on frozen values";
  }
}

TEST_P(AllMonitors, NegativeValueRegime) {
  auto monitor = make_monitor(GetParam(), 2);
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.lo = -2'000'000;
  spec.walk.hi = -1'000'000;
  spec.walk.max_step = 3'000;
  auto streams = make_stream_set(spec, 8, 9);
  RunConfig cfg;
  cfg.n = 8;
  cfg.k = 2;
  cfg.steps = 300;
  cfg.seed = 9;
  const auto r = run_monitor(*monitor, streams, cfg);
  EXPECT_TRUE(r.correct);
}

TEST_P(AllMonitors, HugeMagnitudeJumps) {
  // Alternating extreme magnitudes (quarter of the int64 range so the
  // distinctness transform and midpoints stay exact).
  const Value big = std::numeric_limits<Value>::max() / 8;
  auto monitor = make_monitor(GetParam(), 1);
  TraceMatrix trace(4, 20);
  for (std::size_t t = 0; t < 20; ++t) {
    trace.at(t, 0) = (t % 3 == 0) ? big : -big;
    trace.at(t, 1) = big / 2;
    trace.at(t, 2) = -big / 2;
    trace.at(t, 3) = static_cast<Value>(t);
  }
  auto streams = trace.to_stream_set();
  RunConfig cfg;
  cfg.n = 4;
  cfg.k = 1;
  cfg.steps = 19;
  cfg.seed = 11;
  const auto r = run_monitor(*monitor, streams, cfg);
  EXPECT_TRUE(r.correct);
}

TEST_P(AllMonitors, KJustBelowN) {
  auto monitor = make_monitor(GetParam(), 7);
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 5'000;
  auto streams = make_stream_set(spec, 8, 13);
  RunConfig cfg;
  cfg.n = 8;
  cfg.k = 7;
  cfg.steps = 300;
  cfg.seed = 13;
  const auto r = run_monitor(*monitor, streams, cfg);
  EXPECT_TRUE(r.correct);
}

INSTANTIATE_TEST_SUITE_P(Battery, AllMonitors,
                         ::testing::ValuesIn(kAllMonitors),
                         [](const ::testing::TestParamInfo<std::string>& p) {
                           return p.param;
                         });

// ---------------------------------------------------------------------------
// Cross-monitor sanity on one shared trace: every algorithm answers the
// same (correct) sets at every step of a churny hand-made trace.
// ---------------------------------------------------------------------------

TEST(MonitorAgreement, AllAlgorithmsAgreeOnChurnyTrace) {
  TraceMatrix trace(5, 60);
  Rng rng(17);
  for (std::size_t t = 0; t < 60; ++t) {
    for (NodeId i = 0; i < 5; ++i) {
      trace.at(t, i) = rng.uniform_int(0, 50) * 5 + i;  // distinct, churny
    }
  }
  std::vector<std::vector<NodeId>> answers;
  for (const auto& name : kAllMonitors) {
    auto streams = trace.to_stream_set();
    auto monitor = make_monitor(name, 2);
    RunConfig cfg;
    cfg.n = 5;
    cfg.k = 2;
    cfg.steps = 59;
    cfg.seed = 21;
    const auto r = run_monitor(*monitor, streams, cfg);
    EXPECT_TRUE(r.correct) << name;
    answers.push_back(monitor->topk());
  }
  for (std::size_t i = 1; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i], answers[0]);
  }
}

// ---------------------------------------------------------------------------
// MultiK-specific edges not covered by its main test file.
// ---------------------------------------------------------------------------

TEST(MultiKEdges, SingleNodeSingleK) {
  Cluster c(1, 1);
  c.set_value(0, 5);
  MultiKMonitor m({1});
  m.initialize(c);  // k == n: degenerate
  EXPECT_EQ(m.topk_for(1), (std::vector<NodeId>{0}));
  EXPECT_EQ(c.stats().total(), 0u);
}

TEST(MultiKEdges, DenseBoundaries) {
  // Every rank is a boundary: equivalent to full-order tracking.
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 4'000;
  auto streams = make_stream_set(spec, 6, 23);
  Cluster c(6, 23);
  MultiKMonitor m({1, 2, 3, 4, 5});
  for (NodeId i = 0; i < 6; ++i) c.set_value(i, streams.advance(i));
  m.initialize(c);
  for (TimeStep t = 1; t <= 300; ++t) {
    for (NodeId i = 0; i < 6; ++i) c.set_value(i, streams.advance(i));
    m.step(c, t);
    for (std::size_t k = 1; k <= 5; ++k) {
      ASSERT_EQ(m.topk_for(k), true_topk_set(c, k)) << "k=" << k << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace topkmon
