// Tests for the ordered top-k monitor (§5 future-work variant).
#include "core/ordered_topk_monitor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/ground_truth.hpp"
#include "core/runner.hpp"
#include "core/topk_monitor.hpp"
#include "streams/factory.hpp"

namespace topkmon {
namespace {

RunConfig cfg_of(std::size_t n, std::size_t k, std::size_t steps,
                 std::uint64_t seed) {
  RunConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.steps = steps;
  cfg.seed = seed;
  cfg.validate_order = true;
  return cfg;
}

TEST(OrderedTopk, RejectsBadK) {
  EXPECT_THROW(OrderedTopkMonitor(0), std::invalid_argument);
}

TEST(OrderedTopk, InitializationOrdersTopK) {
  Cluster c(5, 1);
  const std::vector<Value> values{30, 10, 50, 20, 40};
  for (NodeId i = 0; i < 5; ++i) c.set_value(i, values[i]);
  OrderedTopkMonitor m(3);
  m.initialize(c);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 2, 4}));
  EXPECT_EQ(m.ordered_topk(), (std::vector<NodeId>{2, 4, 0}));
}

TEST(OrderedTopk, QuietWhenNothingCrosses) {
  Cluster c(4, 3);
  const std::vector<Value> values{4'000, 3'000, 2'000, 1'000};
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, values[i]);
  OrderedTopkMonitor m(2);
  m.initialize(c);
  const auto baseline = c.stats().total();
  c.set_value(0, 4'010);
  c.set_value(1, 2'990);
  m.step(c, 1);
  EXPECT_EQ(c.stats().total(), baseline);
  EXPECT_EQ(m.ordered_topk(), (std::vector<NodeId>{0, 1}));
}

TEST(OrderedTopk, InternalSwapReordersWithoutReset) {
  Cluster c(4, 5);
  const std::vector<Value> values{4'000, 3'000, 2'000, 1'000};
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, values[i]);
  OrderedTopkMonitor m(2);
  m.initialize(c);
  const auto resets_before = m.monitor_stats().filter_resets;
  // Members 0 and 1 swap; both stay far above the boundary.
  c.set_value(0, 2'900);
  c.set_value(1, 3'900);
  m.step(c, 1);
  EXPECT_EQ(m.ordered_topk(), (std::vector<NodeId>{1, 0}));
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 1}));  // set unchanged
  EXPECT_EQ(m.monitor_stats().filter_resets, resets_before);
}

TEST(OrderedTopk, BoundaryCrossingChangesSet) {
  Cluster c(4, 7);
  const std::vector<Value> values{4'000, 3'000, 2'000, 1'000};
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, values[i]);
  OrderedTopkMonitor m(2);
  m.initialize(c);
  c.set_value(1, 500);   // member collapses
  c.set_value(2, 3'500); // outsider rises
  m.step(c, 1);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(m.ordered_topk(), (std::vector<NodeId>{0, 2}));
}

TEST(OrderedTopk, KEqualsOneDegeneratesToMaxTracking) {
  Cluster c(6, 9);
  for (NodeId i = 0; i < 6; ++i) c.set_value(i, 10 * (i + 1));
  OrderedTopkMonitor m(1);
  m.initialize(c);
  EXPECT_EQ(m.ordered_topk(), (std::vector<NodeId>{5}));
  c.set_value(0, 1'000);
  m.step(c, 1);
  EXPECT_EQ(m.ordered_topk(), (std::vector<NodeId>{0}));
}

TEST(OrderedTopk, KEqualsNOrdersEverything) {
  Cluster c(4, 11);
  const std::vector<Value> values{20, 40, 10, 30};
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, values[i]);
  OrderedTopkMonitor m(4);
  m.initialize(c);
  EXPECT_EQ(m.ordered_topk(), (std::vector<NodeId>{1, 3, 0, 2}));
  // Swap two nodes; order must follow.
  c.set_value(0, 45);
  m.step(c, 1);
  EXPECT_EQ(m.ordered_topk(), (std::vector<NodeId>{0, 1, 3, 2}));
}

TEST(OrderedTopk, LongWalkOrderAlwaysCorrect) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 3'000;
  auto streams = make_stream_set(spec, 10, 13);
  OrderedTopkMonitor m(4);
  const auto result = run_monitor(m, streams, cfg_of(10, 4, 1'000, 13));
  EXPECT_TRUE(result.correct);
}

TEST(OrderedTopk, SinusoidalRotationsCorrect) {
  StreamSpec spec;
  spec.family = StreamFamily::kSinusoidal;
  spec.sinus.period = 80.0;
  spec.sinus.amplitude = 400.0;
  auto streams = make_stream_set(spec, 8, 15);
  OrderedTopkMonitor m(3);
  const auto result = run_monitor(m, streams, cfg_of(8, 3, 600, 15));
  EXPECT_TRUE(result.correct);
}

TEST(OrderedTopk, CostsMoreThanUnorderedVariant) {
  // Maintaining the order cannot be cheaper than maintaining just the set
  // on order-churny inputs (E10 quantifies the overhead).
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 10'000;
  auto s1 = make_stream_set(spec, 12, 17);
  OrderedTopkMonitor ordered(4);
  const auto r1 = run_monitor(ordered, s1, cfg_of(12, 4, 500, 17));

  auto cfg2 = cfg_of(12, 4, 500, 17);
  cfg2.validate_order = false;
  auto s2 = make_stream_set(spec, 12, 17);
  TopkFilterMonitor plain(4);
  const auto r2 = run_monitor(plain, s2, cfg2);

  EXPECT_TRUE(r1.correct);
  EXPECT_TRUE(r2.correct);
  EXPECT_GE(r1.comm.total(), r2.comm.total());
}

}  // namespace
}  // namespace topkmon
