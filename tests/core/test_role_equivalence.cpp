// The load-bearing guarantee of the role-separated redesign: under the
// instant NetworkSpec, the native event-driven implementations are
// *byte-identical* to their lock-step MonitorBase counterparts — same
// messages of every kind in every step, same protocol coin flips, same
// answers, same algorithm-event counters. This is what lets every
// pre-redesign experiment suite reproduce its numbers exactly through
// the Scenario path. The comparison machinery lives in the shared
// differential harness (role_port_harness.hpp), which also proves the
// five later ports (test_role_ports.cpp) — one standard for the zoo.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "role_port_harness.hpp"

namespace topkmon {
namespace {

using harness::Shape;
using harness::expect_identical;
using harness::run_lockstep;
using harness::run_native;

void expect_identical_and_correct(const RunResult& lockstep,
                                  const RunResult& native,
                                  const std::string& label) {
  // The monitors below are exact on the instant network: beyond twin
  // identity, both runs must match the ground truth at every step.
  EXPECT_TRUE(lockstep.correct) << label;
  EXPECT_TRUE(native.correct) << label;
  expect_identical(lockstep, native, label);
}

TEST(RoleEquivalence, FilterMonitorMatchesLockstepAcrossShapes) {
  const std::vector<Shape> shapes{{8, 2}, {16, 4}, {16, 1}, {16, 15}, {5, 5}};
  const std::vector<std::string> families{"random_walk", "iid_uniform",
                                          "rotating_max", "bursty"};
  for (const Shape s : shapes) {
    for (const std::string& family : families) {
      for (const std::uint64_t seed : {1ull, 7ull}) {
        const auto lockstep =
            run_lockstep("topk_filter", family, s, seed, 300);
        const auto native = run_native("topk_filter", family, s, seed, 300);
        expect_identical_and_correct(
            lockstep, native,
            "topk_filter n=" + std::to_string(s.n) + " k=" +
                std::to_string(s.k) + " fam=" + family + " seed=" +
                std::to_string(seed));
      }
    }
  }
}

TEST(RoleEquivalence, FilterMonitorMatchesLockstepWithBeaconSuppression) {
  const Shape s{24, 4};
  for (const std::string family : {"random_walk", "iid_uniform"}) {
    const auto lockstep =
        run_lockstep("topk_filter?nobeacon", family, s, 11, 400);
    const auto native = run_native("topk_filter?nobeacon", family, s, 11, 400);
    expect_identical_and_correct(lockstep, native, "nobeacon fam=" + family);
  }
}

TEST(RoleEquivalence, NaiveVariantsMatchLockstep) {
  const Shape s{12, 3};
  for (const std::string spec : {"naive", "naive_chg"}) {
    for (const std::string family : {"random_walk", "sinusoidal"}) {
      const auto lockstep = run_lockstep(spec, family, s, 3, 250);
      const auto native = run_native(spec, family, s, 3, 250);
      expect_identical_and_correct(lockstep, native,
                                   spec + " fam=" + family);
    }
  }
}

TEST(RoleEquivalence, FormerAdapterMonitorsNowRunNativeAndMatch) {
  // Before the five-port PR these bridged through LockstepAdapter; the
  // same twin comparison now exercises their native role pairs (the
  // deep per-port grids live in test_role_ports.cpp). `recompute` stays
  // the adapter-backed reference, pinning that the bridge still works.
  const Shape s{16, 4};
  for (const std::string spec :
       {"recompute", "slack", "dominance", "ordered", "approx?eps=64"}) {
    const auto lockstep = run_lockstep(spec, "random_walk", s, 5, 200);
    const auto native = run_native(spec, "random_walk", s, 5, 200);
    expect_identical_and_correct(lockstep, native, spec);
  }
}

TEST(RoleEquivalence, ScenarioRejectsAdapterMonitorsOnLossyNetworks) {
  exp::Scenario sc;
  sc.monitor = "recompute";
  sc.n = 8;
  sc.k = 2;
  sc.steps = 10;
  sc.network = parse_network_spec("delay=1");
  EXPECT_THROW(exp::run_scenario(sc), std::invalid_argument);
}

}  // namespace
}  // namespace topkmon
