// The load-bearing guarantee of the role-separated redesign: under the
// instant NetworkSpec, the native event-driven implementations
// (FilterCoordinator/FilterNode for the paper's Algorithm 1, the naive
// roles for the §2.1 baseline) are *byte-identical* to their lock-step
// MonitorBase counterparts — same messages of every kind in every step,
// same protocol coin flips, same answers, same algorithm-event counters.
// This is what lets every pre-redesign experiment suite reproduce its
// numbers exactly through the Scenario path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/runner.hpp"
#include "exp/monitor_registry.hpp"
#include "exp/scenario.hpp"
#include "streams/factory.hpp"

namespace topkmon {
namespace {

struct Shape {
  std::size_t n;
  std::size_t k;
};

RunResult run_lockstep(const std::string& spec, StreamFamily family, Shape s,
                       std::uint64_t seed, std::size_t steps) {
  auto monitor = exp::make_monitor(spec, s.k);
  StreamSpec stream;
  stream.family = family;
  auto streams = make_stream_set(stream, s.n, seed);
  RunConfig cfg;
  cfg.n = s.n;
  cfg.k = s.k;
  cfg.steps = steps;
  cfg.seed = seed;
  cfg.record_series = true;
  return run_monitor(*monitor, streams, cfg);
}

RunResult run_native(const std::string& spec, StreamFamily family, Shape s,
                     std::uint64_t seed, std::size_t steps) {
  exp::Scenario sc;
  sc.monitor = spec;
  sc.stream.family = family;
  sc.n = s.n;
  sc.k = s.k;
  sc.steps = steps;
  sc.seed = seed;
  sc.record_series = true;
  return exp::run_scenario(sc);
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.monitor_name, b.monitor_name);
  EXPECT_TRUE(a.correct);
  EXPECT_TRUE(b.correct);

  // Communication: every direction, every kind, every step.
  EXPECT_EQ(a.comm.upstream(), b.comm.upstream());
  EXPECT_EQ(a.comm.unicast(), b.comm.unicast());
  EXPECT_EQ(a.comm.broadcast(), b.comm.broadcast());
  for (std::size_t kind = 0; kind < kNumMsgKinds; ++kind) {
    EXPECT_EQ(a.comm.by_kind(static_cast<MsgKind>(kind)),
              b.comm.by_kind(static_cast<MsgKind>(kind)))
        << "kind " << msg_kind_name(static_cast<MsgKind>(kind));
  }
  EXPECT_EQ(a.comm.series(), b.comm.series());

  // Algorithm event counters.
  EXPECT_EQ(a.monitor.violation_steps, b.monitor.violation_steps);
  EXPECT_EQ(a.monitor.violations, b.monitor.violations);
  EXPECT_EQ(a.monitor.handler_calls, b.monitor.handler_calls);
  EXPECT_EQ(a.monitor.midpoint_updates, b.monitor.midpoint_updates);
  EXPECT_EQ(a.monitor.filter_resets, b.monitor.filter_resets);
  EXPECT_EQ(a.monitor.protocol_runs, b.monitor.protocol_runs);
}

TEST(RoleEquivalence, FilterMonitorMatchesLockstepAcrossShapes) {
  const std::vector<Shape> shapes{{8, 2}, {16, 4}, {16, 1}, {16, 15}, {5, 5}};
  const std::vector<StreamFamily> families{
      StreamFamily::kRandomWalk, StreamFamily::kIidUniform,
      StreamFamily::kRotatingMax, StreamFamily::kBursty};
  for (const Shape s : shapes) {
    for (const StreamFamily family : families) {
      for (const std::uint64_t seed : {1ull, 7ull}) {
        const auto lockstep =
            run_lockstep("topk_filter", family, s, seed, 300);
        const auto native = run_native("topk_filter", family, s, seed, 300);
        expect_identical(lockstep, native,
                         "topk_filter n=" + std::to_string(s.n) +
                             " k=" + std::to_string(s.k) + " fam=" +
                             std::string(family_name(family)) + " seed=" +
                             std::to_string(seed));
      }
    }
  }
}

TEST(RoleEquivalence, FilterMonitorMatchesLockstepWithBeaconSuppression) {
  const Shape s{24, 4};
  for (const StreamFamily family :
       {StreamFamily::kRandomWalk, StreamFamily::kIidUniform}) {
    const auto lockstep =
        run_lockstep("topk_filter?nobeacon", family, s, 11, 400);
    const auto native = run_native("topk_filter?nobeacon", family, s, 11, 400);
    expect_identical(lockstep, native,
                     "nobeacon fam=" + std::string(family_name(family)));
  }
}

TEST(RoleEquivalence, NaiveVariantsMatchLockstep) {
  const Shape s{12, 3};
  for (const std::string spec : {"naive", "naive_chg"}) {
    for (const StreamFamily family :
         {StreamFamily::kRandomWalk, StreamFamily::kSinusoidal}) {
      const auto lockstep = run_lockstep(spec, family, s, 3, 250);
      const auto native = run_native(spec, family, s, 3, 250);
      expect_identical(lockstep, native,
                       spec + " fam=" + std::string(family_name(family)));
    }
  }
}

TEST(RoleEquivalence, AdapterBackedMonitorsMatchLockstep) {
  const Shape s{16, 4};
  for (const std::string spec :
       {"recompute", "slack", "dominance", "ordered", "approx?eps=64"}) {
    const auto lockstep =
        run_lockstep(spec, StreamFamily::kRandomWalk, s, 5, 200);
    const auto native = run_native(spec, StreamFamily::kRandomWalk, s, 5, 200);
    expect_identical(lockstep, native, spec);
  }
}

TEST(RoleEquivalence, ScenarioRejectsAdapterMonitorsOnLossyNetworks) {
  exp::Scenario sc;
  sc.monitor = "recompute";
  sc.n = 8;
  sc.k = 2;
  sc.steps = 10;
  sc.network = parse_network_spec("delay=1");
  EXPECT_THROW(exp::run_scenario(sc), std::invalid_argument);
}

}  // namespace
}  // namespace topkmon
