// Property test for the differential harness itself: the harness only
// proves equivalence if it would *fail* on an inequivalent port. The
// slack role port carries a test-only `?nudge=<v>` mutation knob that
// shifts every applied filter boundary by `v` value units — the classic
// off-by-one porting bug. The harness comparison (messages by kind,
// per-step series, counters, error pattern) must flag the mutant
//
//   * against the lock-step oracle under the instant network, and
//   * against the clean native port under every scheduled network
//     policy (where no lock-step twin exists),
//
// pinning that the comparison has teeth on each policy rather than
// vacuously passing on dimensions a policy happens not to exercise.
#include <gtest/gtest.h>

#include <string>

#include "role_port_harness.hpp"

namespace topkmon {
namespace {

using harness::Shape;
using harness::results_identical;
using harness::run_lockstep;
using harness::run_native;

constexpr Shape kShape{16, 4};
constexpr std::uint64_t kSeed = 5;
constexpr std::size_t kSteps = 600;

// A ±1 boundary error is only observable when values actually visit the
// integers next to a boundary. The default walk jumps ~128 transformed
// units per step and sails straight over a one-unit shift; this slow
// unit-step walk in a compressed range crawls *through* every boundary
// it crosses, so the off-by-one flips real filter decisions.
StreamSpec dense_walk() {
  StreamSpec stream;
  stream.family = StreamFamily::kRandomWalk;
  stream.walk.max_step = 1;
  stream.walk.hi = 300;
  return stream;
}

TEST(PortMutant, HarnessCatchesMutantAgainstLockstepOracle) {
  const auto oracle =
      run_lockstep("slack", dense_walk(), kShape, kSeed, kSteps);
  const auto mutant =
      run_native("slack?nudge=1", dense_walk(), kShape, kSeed, kSteps);
  EXPECT_FALSE(results_identical(oracle, mutant))
      << "an off-by-one boundary survived the differential comparison";
}

TEST(PortMutant, HarnessCatchesMutantOnEveryNetworkPolicy) {
  for (const std::string network :
       {"instant", "delay=2", "jitter=2", "drop=0.02"}) {
    SCOPED_TRACE(network);
    const auto clean =
        run_native("slack", dense_walk(), kShape, kSeed, kSteps,
                   RunConfig::Validation::kWeak, network);
    const auto mutant =
        run_native("slack?nudge=1", dense_walk(), kShape, kSeed, kSteps,
                   RunConfig::Validation::kWeak, network);
    EXPECT_FALSE(results_identical(clean, mutant))
        << "mutant indistinguishable from the clean port under " << network;
  }
}

TEST(PortMutant, CleanPortStillPassesTheSameComparison) {
  // Control arm: the exact comparison that catches the mutant must hold
  // for the unperturbed port, or the property above proves nothing.
  const auto oracle =
      run_lockstep("slack", dense_walk(), kShape, kSeed, kSteps);
  const auto native = run_native("slack", dense_walk(), kShape, kSeed, kSteps);
  EXPECT_TRUE(results_identical(oracle, native));
}

}  // namespace
}  // namespace topkmon
