// Optimality oracle for the offline-OPT computation: on small random
// traces, an exhaustive dynamic program over all feasible epoch intervals
// must agree with the greedy partition's epoch count — the exchange
// argument (greedy furthest extension is optimal) verified by brute force.
#include <gtest/gtest.h>

#include <vector>

#include "core/ground_truth.hpp"
#include "core/offline_opt.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

/// True iff one static filter set can cover trace steps [s, e] (inclusive)
/// for the top-k problem: the top-k set of step s must satisfy
/// T+(s, e) >= T-(s, e)  (Lemma 3.2 and its converse).
bool interval_feasible(const TraceMatrix& trace, std::size_t k,
                       std::size_t s, std::size_t e) {
  const std::size_t n = trace.nodes();
  std::vector<Value> first(n);
  for (NodeId i = 0; i < n; ++i) first[i] = trace.at(s, i);
  const auto members = true_topk_set(first, k);
  std::vector<char> in_set(n, 0);
  for (const NodeId id : members) in_set[id] = 1;
  Value t_plus = kPlusInf;
  Value t_minus = kMinusInf;
  for (std::size_t t = s; t <= e; ++t) {
    for (NodeId i = 0; i < n; ++i) {
      const Value v = trace.at(t, i);
      if (in_set[i]) t_plus = std::min(t_plus, v);
      else t_minus = std::max(t_minus, v);
    }
  }
  return t_plus >= t_minus;
}

/// Minimal number of epochs by exhaustive DP: dp[t] = min epochs covering
/// steps [0, t).
std::size_t brute_force_epochs(const TraceMatrix& trace, std::size_t k) {
  const std::size_t steps = trace.steps();
  if (steps == 0) return 0;
  constexpr std::size_t kInf = static_cast<std::size_t>(-1);
  std::vector<std::size_t> dp(steps + 1, kInf);
  dp[0] = 0;
  for (std::size_t end = 1; end <= steps; ++end) {
    for (std::size_t start = 0; start < end; ++start) {
      if (dp[start] == kInf) continue;
      // Epochs must begin with the ground-truth top-k of their first step
      // (any valid filter set fixes F's value, which must be correct), so
      // checking that canonical set suffices.
      if (interval_feasible(trace, k, start, end - 1)) {
        dp[end] = std::min(dp[end], dp[start] + 1);
      }
    }
  }
  return dp[steps];
}

TraceMatrix random_trace(std::size_t n, std::size_t steps, Rng& rng,
                         Value span) {
  TraceMatrix trace(n, steps);
  std::vector<Value> current(n);
  for (auto& v : current) v = rng.uniform_int(0, span);
  for (std::size_t t = 0; t < steps; ++t) {
    for (NodeId i = 0; i < n; ++i) {
      current[i] += rng.uniform_int(-span / 4, span / 4);
      // Distinct by construction.
      trace.at(t, i) =
          current[i] * static_cast<Value>(n) + static_cast<Value>(i);
    }
  }
  return trace;
}

class OptOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptOracle, GreedyMatchesBruteForce) {
  Rng rng(GetParam() * 2654435761u + 3);
  const std::size_t n = 2 + rng.uniform_below(3);   // 2..4 nodes
  const std::size_t steps = 4 + rng.uniform_below(9);  // 4..12 steps
  const std::size_t k = 1 + rng.uniform_below(n - 1);
  const Value span = 20 + static_cast<Value>(rng.uniform_below(60));
  const auto trace = random_trace(n, steps, rng, span);

  const auto greedy = compute_offline_opt(trace, k);
  const auto brute = brute_force_epochs(trace, k);
  EXPECT_EQ(greedy.epochs, brute)
      << "n=" << n << " steps=" << steps << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptOracle,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(OptOracle, HandCraftedMultiEpoch) {
  // Three forced epochs: two swaps with recovery in between.
  TraceMatrix trace(2, 6);
  const Value rows[6][2] = {{100, 10}, {90, 20},   // epoch 1
                            {10, 100}, {20, 90},   // epoch 2 (swap)
                            {100, 10}, {95, 15}};  // epoch 3 (swap back)
  for (std::size_t t = 0; t < 6; ++t) {
    trace.at(t, 0) = rows[t][0];
    trace.at(t, 1) = rows[t][1];
  }
  EXPECT_EQ(compute_offline_opt(trace, 1).epochs, 3u);
  EXPECT_EQ(brute_force_epochs(trace, 1), 3u);
}

TEST(OptOracle, FeasibilityHelperAgreesWithComputation) {
  // Cross-check the local feasibility helper on a trace where exactly the
  // prefix [0,2] is feasible.
  TraceMatrix trace(2, 4);
  const Value rows[4][2] = {{50, 10}, {40, 20}, {35, 30}, {20, 45}};
  for (std::size_t t = 0; t < 4; ++t) {
    trace.at(t, 0) = rows[t][0];
    trace.at(t, 1) = rows[t][1];
  }
  EXPECT_TRUE(interval_feasible(trace, 1, 0, 2));
  EXPECT_FALSE(interval_feasible(trace, 1, 0, 3));
  EXPECT_TRUE(interval_feasible(trace, 1, 3, 3));
  EXPECT_EQ(compute_offline_opt(trace, 1).epochs, 2u);
}

}  // namespace
}  // namespace topkmon
