// Adversarial fault model end-to-end tests: lag / stale / mute / heal
// degradations against the suspicion state machines (topk_filter?suspect,
// naive?suspect, naive_chg?suspect — see core/filter_roles.hpp and
// core/naive_roles.hpp) and the warm-standby assignment replay
// (topk_filter?replay). Suite names contain "Adversarial" / "Quarantine"
// so the TSan CI job picks the concurrency-facing tests up by filter.
//
// The contract under instant delivery: a degradation may corrupt the
// answer while it is active (the coordinator needs a few strikes to
// convict, and a quarantined node is excluded while the truth still
// counts it), but the error tail is bounded — once the heal lands the
// release probe re-admits the node and the answer is exact again.
//
// The scenarios run a small, tight cluster (n = 8, k = 4) on a volatile
// walk: with half the nodes in the answer, a degraded node is guaranteed
// to interact with the boundary, so detection is actually exercised
// instead of depending on where the seed placed one node.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "sim/fault_plan.hpp"

namespace topkmon {
namespace {

using exp::Scenario;
using exp::run_scenario;

Scenario adversarial_scenario(const std::string& monitor,
                              const std::string& network,
                              const std::string& plan,
                              std::uint64_t max_step = 4'000'000,
                              std::size_t n = 8, std::size_t k = 4) {
  Scenario sc;
  sc.monitor = monitor;
  sc.with_stream_family("random_walk");
  sc.stream.walk.hi = 50'000'000;
  // Volatile by default: every node keeps crossing filter boundaries, so
  // degraded nodes keep signalling (silence strikes accrue) and frozen
  // stale reports contradict the node's true trajectory quickly.
  sc.stream.walk.max_step = max_step;
  sc.with_network(network);
  sc.n = n;
  sc.k = k;
  sc.steps = 300;
  sc.seed = 13;
  sc.faults = plan;
  sc.validation = RunConfig::Validation::kStrict;
  sc.throw_on_error = false;
  return sc;
}

// Three of the eight nodes go mute at 50 and heal at 200: whichever way
// the walk breaks, at least one muted node crosses the k-boundary.
constexpr const char* kMutePlan =
    "churn?mute=0@50,mute=1@50,mute=2@50,heal=0@200,heal=1@200,heal=2@200";

// ---------------------------------------------------------------------------
// Bounded error tails + exact convergence after the heal
// ---------------------------------------------------------------------------

TEST(AdversarialFaults, MuteIsQuarantinedAndHealConvergesExactly) {
  for (const char* mon : {"topk_filter?nobeacon,suspect", "naive?suspect",
                          "naive_chg?suspect"}) {
    SCOPED_TRACE(mon);
    const RunResult r =
        run_scenario(adversarial_scenario(mon, "instant", kMutePlan));
    // The coordinator inferred the degradation without any
    // failure-detector event...
    EXPECT_GE(r.monitor.suspicions, 3u) << "mute nodes not all suspected";
    EXPECT_GE(r.monitor.quarantines, 3u) << "mute nodes not all quarantined";
    // ...and after the heal the release probe re-admits the nodes: the
    // tail is exact on instant delivery.
    EXPECT_EQ(r.error_steps_since(250), 0u);
    // Every degradation event (3 mutes + 3 heals) opened a recovery
    // window and every window closed within bounded ticks.
    EXPECT_EQ(r.recovery_ticks.size(), 6u);
    EXPECT_LE(r.max_recovery_ticks(), 50'000u);
  }
}

TEST(AdversarialFaults, LaggardIsConvictedAndHealConvergesExactly) {
  // 200 delivery ticks of per-message hold dwarfs the session window, so
  // the laggard's reports land only after the repair already aborted —
  // stragglers that must not launder its silence. Its late probe replies
  // keep releasing the quarantine (the oscillation the capped backoff
  // damps), so suspicions re-accumulate for as long as the lag holds.
  const RunResult r = run_scenario(adversarial_scenario(
      "topk_filter?nobeacon,suspect", "instant",
      "churn?lag=0@50:200,heal=0@200"));
  EXPECT_GE(r.monitor.suspicions, 1u);
  EXPECT_GE(r.monitor.quarantines, 1u);
  EXPECT_EQ(r.error_steps_since(250), 0u);
}

TEST(AdversarialFaults, NaiveAbsorbsInStepLagByDesign) {
  // The naive coordinator reads whatever reports have arrived by the end
  // of the step's settle loop; a lag that releases within the step is
  // invisible to it — no errors, and correctly no suspicion either.
  const RunResult r = run_scenario(adversarial_scenario(
      "naive?suspect", "instant", "churn?lag=0@50:200,heal=0@200"));
  EXPECT_EQ(r.error_steps, 0u);
  EXPECT_EQ(r.monitor.suspicions, 0u);
}

TEST(AdversarialFaults, StaleResponderDetectedByFilterOnly) {
  // A stale responder keeps answering probes — silence detection never
  // fires. Only the filter monitor can convict it, by contradiction: the
  // node's (unforgeable) violation signal says its true value crossed
  // the boundary while its frozen reports keep landing on the other
  // side.
  const RunResult filter = run_scenario(adversarial_scenario(
      "topk_filter?nobeacon,suspect", "instant",
      "churn?stale=0@50,heal=0@200"));
  EXPECT_GE(filter.monitor.stale_detections, 1u);
  EXPECT_GE(filter.monitor.quarantines, 1u);
  EXPECT_EQ(filter.error_steps_since(250), 0u);

  // The naive family has no violation signals to contradict a frozen
  // report: stale is undetectable by design, the counter stays 0.
  const RunResult naive = run_scenario(adversarial_scenario(
      "naive?suspect", "instant", "churn?stale=0@50,heal=0@200"));
  EXPECT_EQ(naive.monitor.stale_detections, 0u);
  EXPECT_EQ(naive.monitor.quarantines, 0u);
}

TEST(AdversarialFaults, SuspectIsTraceInertOnCleanRuns) {
  // The suspicion machinery must not change a single message until a
  // node actually degrades — even on a workload volatile enough that
  // values hover across the boundary (the honest-hover race the
  // same-step signal anchor exists for).
  for (const char* mon : {"topk_filter?nobeacon", "naive"}) {
    SCOPED_TRACE(mon);
    Scenario plain =
        adversarial_scenario(mon, "instant", "none", 2'000'000, 32, 6);
    Scenario armed = plain;
    armed.monitor = std::string(mon) +
                    (std::string(mon).find('?') == std::string::npos
                         ? "?suspect"
                         : ",suspect");
    const RunResult a = run_scenario(plain);
    const RunResult b = run_scenario(armed);
    EXPECT_EQ(a.comm.total(), b.comm.total());
    EXPECT_EQ(a.comm.upstream(), b.comm.upstream());
    EXPECT_EQ(a.comm.unicast(), b.comm.unicast());
    EXPECT_EQ(a.error_steps, 0u);
    EXPECT_EQ(b.error_steps, 0u);
    EXPECT_EQ(b.monitor.suspicions, 0u);
    EXPECT_EQ(b.monitor.quarantines, 0u);
  }
  // naive_chg is the exception: a change-only reporter cannot be audited
  // passively, so ?suspect adds exactly its round-robin audit probes
  // (one probe + one reply per poll) and nothing else.
  Scenario plain = adversarial_scenario("naive_chg", "instant", "none",
                                        2'000'000, 32, 6);
  Scenario armed = plain;
  armed.monitor = "naive_chg?suspect";
  const RunResult a = run_scenario(plain);
  const RunResult b = run_scenario(armed);
  EXPECT_EQ(b.monitor.quarantines, 0u);
  EXPECT_GT(b.monitor.polls, 0u);
  EXPECT_EQ(b.comm.total(), a.comm.total() + 2 * b.monitor.polls);
}

// naive_chg audits with round-robin probes (silence is legitimate for a
// change-only reporter), so its polls counter must move under suspect.
TEST(AdversarialFaults, NaiveChgAuditsWithPolls) {
  const RunResult r = run_scenario(
      adversarial_scenario("naive_chg?suspect", "instant", kMutePlan));
  EXPECT_GE(r.monitor.polls, 1u);
  EXPECT_GE(r.monitor.quarantines, 3u);
  EXPECT_EQ(r.error_steps_since(250), 0u);
}

// ---------------------------------------------------------------------------
// Quarantine accounting and release
// ---------------------------------------------------------------------------

TEST(QuarantineRelease, MuteWithoutHealStaysQuarantined) {
  // No heal: the nodes stay mute to the end. Errors may persist (the
  // truth still counts the muted nodes) but the run must complete with
  // consistent accounting — the quarantine holds instead of thrashing.
  const RunResult r = run_scenario(adversarial_scenario(
      "topk_filter?nobeacon,suspect", "instant",
      "churn?mute=0@50,mute=1@50,mute=2@50"));
  EXPECT_GE(r.monitor.quarantines, 3u);
  EXPECT_EQ(r.steps_executed, 301u);  // run completes, no hang
  EXPECT_EQ(r.error_step_list.size(), r.error_steps);
}

TEST(QuarantineRelease, DegradationsAreWorkerCountInvariant) {
  // The held-send queue (lag) and the suspicion machinery run on the
  // driver's serial phases; the parallel tick scan must not perturb one
  // message or one strike.
  Scenario sc = adversarial_scenario(
      "topk_filter?nobeacon,suspect", "instant",
      "churn?lag=0@50:200,mute=1@80,heal=0@180,heal=1@220");
  sc.workers = 1;
  const RunResult a = run_scenario(sc);
  sc.workers = 8;
  const RunResult b = run_scenario(sc);
  EXPECT_EQ(a.comm.total(), b.comm.total());
  EXPECT_EQ(a.error_step_list, b.error_step_list);
  EXPECT_EQ(a.recovery_ticks, b.recovery_ticks);
  EXPECT_EQ(a.monitor.suspicions, b.monitor.suspicions);
  EXPECT_EQ(a.monitor.quarantines, b.monitor.quarantines);
}

TEST(QuarantineRelease, DegradationsComposeWithDelayNetworks) {
  // The strike thresholds are tuned for instant/delayed networks: under
  // delay=2 the run must keep consistent accounting, convict the mute
  // nodes, and converge after the heal.
  const RunResult r = run_scenario(adversarial_scenario(
      "topk_filter?nobeacon,suspect", "delay=2", kMutePlan));
  EXPECT_EQ(r.steps_executed, 301u);
  EXPECT_EQ(r.error_step_list.size(), r.error_steps);
  EXPECT_GE(r.monitor.quarantines, 3u);
  EXPECT_EQ(r.error_steps_since(250), 0u);
}

// ---------------------------------------------------------------------------
// Warm-standby assignment replay
// ---------------------------------------------------------------------------

TEST(AdversarialReplay, ReplayCutsResyncStormOnJoinHeavyChurn) {
  // 16 joiners at once on a calm cluster: the handshake path opens 16
  // probe/reply/assign re-syncs whose retries pile up while the joiners
  // warm up; the replay path folds each into one kFilterAssign.
  const char* plan = "churn?join=+16@60";
  const RunResult handshake = run_scenario(adversarial_scenario(
      "topk_filter?nobeacon", "instant", plan, 100'000, 32, 6));
  const RunResult replay = run_scenario(adversarial_scenario(
      "topk_filter?nobeacon,replay", "instant", plan, 100'000, 32, 6));
  EXPECT_EQ(handshake.monitor.resyncs, 16u);
  EXPECT_GT(handshake.monitor.resync_retries, 0u);
  EXPECT_GE(replay.monitor.assign_replays, 16u);
  EXPECT_LT(replay.monitor.resyncs, handshake.monitor.resyncs);
  EXPECT_LT(replay.monitor.resync_retries, handshake.monitor.resync_retries);
  EXPECT_LT(replay.comm.total(), handshake.comm.total());
}

TEST(AdversarialReplay, ReplayKeepsExactTailOnInstant) {
  const char* plan = "churn?crash=5@40,recover=5@100,join=+8@150";
  const RunResult r = run_scenario(adversarial_scenario(
      "topk_filter?nobeacon,replay", "instant", plan, 100'000, 24, 6));
  EXPECT_GE(r.monitor.assign_replays, 1u);
  EXPECT_EQ(r.error_steps_since(250), 0u);
  EXPECT_LE(r.max_recovery_ticks(), 50'000u);
}

TEST(AdversarialReplay, ReplayOffIsDefault) {
  // ?replay changes e19 traces, so it must be strictly opt-in: without
  // the flag the counter stays 0 on any plan.
  const RunResult r = run_scenario(adversarial_scenario(
      "topk_filter?nobeacon", "instant", "churn?join=+8@60", 100'000, 24,
      6));
  EXPECT_EQ(r.monitor.assign_replays, 0u);
  EXPECT_GT(r.monitor.resyncs, 0u);
}

}  // namespace
}  // namespace topkmon
