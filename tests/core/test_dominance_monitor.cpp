// Tests for the Lam-style full-order dominance monitor.
#include "core/dominance_monitor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/ground_truth.hpp"
#include "core/runner.hpp"
#include "streams/factory.hpp"

namespace topkmon {
namespace {

RunConfig cfg_of(std::size_t n, std::size_t k, std::size_t steps,
                 std::uint64_t seed) {
  RunConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.steps = steps;
  cfg.seed = seed;
  return cfg;
}

TEST(DominanceMonitor, RejectsBadK) {
  EXPECT_THROW(DominanceMonitor(0), std::invalid_argument);
}

TEST(DominanceMonitor, InitializationOrdersEverything) {
  Cluster c(5, 1);
  const std::vector<Value> values{30, 10, 50, 20, 40};
  for (NodeId i = 0; i < 5; ++i) c.set_value(i, values[i]);
  DominanceMonitor m(2);
  m.initialize(c);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{2, 4}));
  EXPECT_EQ(m.full_order(), (std::vector<NodeId>{2, 4, 0, 3, 1}));
  // Init costs 1 shout + n echoes + n filter unicasts.
  EXPECT_EQ(c.stats().broadcast(), 1u);
  EXPECT_EQ(c.stats().upstream(), 5u);
  EXPECT_EQ(c.stats().unicast(), 5u);
}

TEST(DominanceMonitor, QuietWhenValuesStayInSlots) {
  Cluster c(4, 3);
  const std::vector<Value> values{400, 300, 200, 100};
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, values[i]);
  DominanceMonitor m(2);
  m.initialize(c);
  const auto baseline = c.stats().total();
  // Wiggle without crossing midpoints (+-10 around spaced-by-100 values).
  c.set_value(0, 410);
  c.set_value(1, 295);
  c.set_value(2, 205);
  c.set_value(3, 95);
  m.step(c, 1);
  EXPECT_EQ(c.stats().total(), baseline);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 1}));
}

TEST(DominanceMonitor, AdjacentSwapHandled) {
  Cluster c(4, 5);
  const std::vector<Value> values{400, 300, 200, 100};
  for (NodeId i = 0; i < 4; ++i) c.set_value(i, values[i]);
  DominanceMonitor m(2);
  m.initialize(c);
  // Nodes 1 and 2 swap.
  c.set_value(1, 190);
  c.set_value(2, 310);
  m.step(c, 1);
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(m.full_order(), (std::vector<NodeId>{0, 2, 1, 3}));
}

TEST(DominanceMonitor, PaysForIrrelevantSwaps) {
  // The §3.1 argument: an order change far below the k-boundary costs the
  // dominance tracker messages although the top-k set is unaffected.
  Cluster c(6, 7);
  const std::vector<Value> values{600, 500, 400, 300, 200, 100};
  for (NodeId i = 0; i < 6; ++i) c.set_value(i, values[i]);
  DominanceMonitor m(1);
  m.initialize(c);
  const auto baseline = c.stats().total();
  c.set_value(4, 95);  // nodes 4 and 5 swap, far from the top
  c.set_value(5, 205);
  m.step(c, 1);
  EXPECT_GT(c.stats().total(), baseline);  // messages despite unchanged top-1
  EXPECT_EQ(m.topk(), (std::vector<NodeId>{0}));
}

TEST(DominanceMonitor, LongWalkStaysCorrect) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 3'000;
  auto streams = make_stream_set(spec, 10, 11);
  DominanceMonitor m(3);
  const auto result = run_monitor(m, streams, cfg_of(10, 3, 1'000, 11));
  EXPECT_TRUE(result.correct);
}

TEST(DominanceMonitor, CorrectUnderTies) {
  // The w-space transform must keep the monitor deterministic and correct
  // even when raw values tie (weak validation accepts any tie-break, and
  // the w order actually matches the strict (value, id) ground truth).
  StreamSpec spec;
  spec.family = StreamFamily::kIidUniform;
  spec.iid_lo = 0;
  spec.iid_hi = 5;  // heavy ties
  spec.enforce_distinct = false;
  auto streams = make_stream_set(spec, 6, 13);
  DominanceMonitor m(2);
  auto cfg = cfg_of(6, 2, 300, 13);
  cfg.validation = RunConfig::Validation::kStrict;
  const auto result = run_monitor(m, streams, cfg);
  EXPECT_TRUE(result.correct);
}

TEST(DominanceMonitor, FullOrderMatchesGroundTruthOverWalk) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 10'000;
  auto streams = make_stream_set(spec, 8, 17);
  Cluster c(8, 17);
  DominanceMonitor m(3);
  for (NodeId i = 0; i < 8; ++i) c.set_value(i, streams.advance(i));
  m.initialize(c);
  for (TimeStep t = 1; t <= 500; ++t) {
    for (NodeId i = 0; i < 8; ++i) c.set_value(i, streams.advance(i));
    m.step(c, t);
    ASSERT_EQ(m.full_order(), true_topk_ordered(c, 8)) << "t=" << t;
  }
}

TEST(DominanceMonitor, CostExceedsTopkFilterOnDeepChurn) {
  // Crossing pairs churn the order at every depth; a top-k algorithm only
  // cares about the boundary pair. (Quantified properly in bench E8; here
  // just assert the dominance tracker is busy.)
  StreamSpec spec;
  spec.family = StreamFamily::kCrossingPairs;
  spec.crossing.period = 16;
  auto streams = make_stream_set(spec, 12, 19);
  DominanceMonitor m(2);
  const auto result = run_monitor(m, streams, cfg_of(12, 2, 300, 19));
  EXPECT_TRUE(result.correct);
  EXPECT_GT(result.monitor.violations, 300u);  // every pair churns
}

}  // namespace
}  // namespace topkmon
