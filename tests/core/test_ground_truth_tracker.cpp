// GroundTruthTracker must be observationally identical to the batch
// helpers (true_topk_set / true_topk_ordered / is_valid_topk) at every
// step of any trajectory — that equivalence is what lets the runners
// validate through it without changing a single experiment byte.
#include <gtest/gtest.h>

#include <vector>

#include "core/ground_truth.hpp"
#include "core/ground_truth_tracker.hpp"
#include "streams/factory.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

/// A candidate near the true answer: the true set with one member swapped
/// for a random outsider (sorted, as monitors emit). Exercises both
/// accept-and-reject paths of the weak check.
std::vector<NodeId> perturbed_candidate(const std::vector<NodeId>& truth,
                                        std::size_t n, Rng& rng) {
  std::vector<NodeId> cand = truth;
  const auto victim =
      static_cast<std::size_t>(rng.uniform_below(cand.size()));
  for (int tries = 0; tries < 16; ++tries) {
    const auto outsider = static_cast<NodeId>(rng.uniform_below(n));
    bool member = false;
    for (const NodeId id : truth) member = member || id == outsider;
    if (!member) {
      cand[victim] = outsider;
      break;
    }
  }
  std::sort(cand.begin(), cand.end());
  return cand;
}

void expect_equivalent(GroundTruthTracker& tracker,
                       const std::vector<Value>& values, std::size_t k,
                       Rng& rng, const char* context) {
  const auto expected_set = true_topk_set(values, k);
  const auto expected_ordered = true_topk_ordered(values, k);
  ASSERT_EQ(tracker.topk_set(), expected_set) << context;
  ASSERT_EQ(tracker.ordered_topk(), expected_ordered) << context;

  // Weak check agreement on: the truth, a perturbation, and garbage.
  ASSERT_TRUE(tracker.is_valid(expected_set)) << context;
  const auto cand = perturbed_candidate(expected_set, values.size(), rng);
  ASSERT_EQ(tracker.is_valid(cand), is_valid_topk(values, cand)) << context;
  const std::vector<NodeId> dup(k, expected_set.front());
  if (k > 1) ASSERT_FALSE(tracker.is_valid(dup)) << context;
  const std::vector<NodeId> bad = {static_cast<NodeId>(values.size())};
  ASSERT_FALSE(tracker.is_valid(bad)) << context;

  // Strict check agreement.
  ASSERT_TRUE(tracker.matches_strict(expected_set)) << context;
  if (cand != expected_set) {
    ASSERT_FALSE(tracker.matches_strict(cand)) << context;
  }
}

TEST(GroundTruthTracker, MatchesBatchOverAllStreamFamilies) {
  constexpr std::size_t kN = 24;
  constexpr std::size_t kSteps = 200;
  for (const StreamFamily family : all_families()) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{5}, kN}) {
      StreamSpec spec;
      spec.family = family;
      auto streams = make_stream_set(spec, kN, 1234);
      GroundTruthTracker tracker(kN, k);
      Rng rng(99);
      std::vector<Value> values(kN);
      for (std::size_t t = 0; t < kSteps; ++t) {
        for (NodeId id = 0; id < kN; ++id) {
          values[id] = streams.advance(id);
          tracker.set_value(id, values[id]);
        }
        expect_equivalent(tracker, values, k, rng,
                          family_name(family).data());
      }
    }
  }
}

TEST(GroundTruthTracker, SparseUpdatesStayExact) {
  constexpr std::size_t kN = 64;
  constexpr std::size_t kK = 8;
  Rng rng(7);
  std::vector<Value> values(kN);
  GroundTruthTracker tracker(kN, kK);
  for (NodeId id = 0; id < kN; ++id) {
    values[id] = rng.uniform_int(0, 1'000'000);
    tracker.set_value(id, values[id]);
  }
  Rng cand_rng(8);
  for (int round = 0; round < 2'000; ++round) {
    // Change a single node per round — the O(changed nodes) regime.
    const auto id = static_cast<NodeId>(rng.uniform_below(kN));
    values[id] = rng.uniform_int(0, 1'000'000);
    tracker.set_value(id, values[id]);
    if (round % 7 == 0) {
      expect_equivalent(tracker, values, kK, cand_rng, "sparse");
    }
  }
  // A single-node-change workload must not rebuild on anything close to
  // every update.
  EXPECT_LT(tracker.full_rebuilds(), 2'000u);
}

TEST(GroundTruthTracker, ExactUnderBoundaryTies) {
  // Tied values across the k-boundary: the tracker must reproduce the
  // batch helpers' id tie-break exactly.
  constexpr std::size_t kN = 6;
  constexpr std::size_t kK = 3;
  GroundTruthTracker tracker(kN, kK);
  Rng rng(3);
  std::vector<Value> values(kN);
  Rng cand_rng(4);
  for (int round = 0; round < 500; ++round) {
    for (NodeId id = 0; id < kN; ++id) {
      // Tiny value domain: ties everywhere, including at the boundary.
      values[id] = rng.uniform_int(0, 3);
      tracker.set_value(id, values[id]);
    }
    expect_equivalent(tracker, values, kK, cand_rng, "ties");
  }
}

TEST(GroundTruthTracker, UnchangedValuesNeverRebuild) {
  constexpr std::size_t kN = 16;
  GroundTruthTracker tracker(kN, 4);
  for (NodeId id = 0; id < kN; ++id) {
    tracker.set_value(id, 1'000 - static_cast<Value>(id));
  }
  (void)tracker.topk_set();
  const auto rebuilds = tracker.full_rebuilds();
  for (int round = 0; round < 100; ++round) {
    for (NodeId id = 0; id < kN; ++id) {
      tracker.set_value(id, 1'000 - static_cast<Value>(id));  // same values
    }
    (void)tracker.topk_set();
  }
  EXPECT_EQ(tracker.full_rebuilds(), rebuilds);
}

TEST(GroundTruthTracker, KEqualsNIsAlwaysValid) {
  constexpr std::size_t kN = 5;
  GroundTruthTracker tracker(kN, kN);
  Rng rng(11);
  std::vector<NodeId> all(kN);
  for (NodeId id = 0; id < kN; ++id) all[id] = id;
  for (int round = 0; round < 50; ++round) {
    for (NodeId id = 0; id < kN; ++id) {
      tracker.set_value(id, rng.uniform_int(-100, 100));
    }
    EXPECT_EQ(tracker.topk_set(), all);
    EXPECT_TRUE(tracker.is_valid(all));
    EXPECT_TRUE(tracker.matches_strict(all));
  }
}

TEST(GroundTruthTracker, LazyHeapSurvivesBoundaryDecayStorm) {
  // Adversarial workload for the non-member lazy heap: the best outsider
  // decays over and over, so every query repairs the boundary (the old
  // implementation paid O(n) per repair; the heap pays amortized pops).
  // Equivalence to the batch helpers must hold throughout, and the
  // rescan counter must actually count the repairs.
  constexpr std::size_t kN = 48;
  constexpr std::size_t kK = 6;
  std::vector<Value> values(kN);
  GroundTruthTracker tracker(kN, kK);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = static_cast<Value>(10'000 - static_cast<Value>(i));
    tracker.set_value(static_cast<NodeId>(i), values[i]);
  }
  Rng rng(42);
  Value floor_value = 0;
  for (int round = 0; round < 1'500; ++round) {
    // The current boundary non-member (k-th outsider by construction of
    // the batch helper) sinks below everyone.
    const auto ordered = true_topk_ordered(values, kK + 1);
    const NodeId boundary = ordered.back();
    values[boundary] = floor_value--;
    tracker.set_value(boundary, values[boundary]);
    ASSERT_EQ(tracker.topk_set(), true_topk_set(values, kK)) << round;
    // Occasionally revive a random node so full rebuilds interleave with
    // the decay-only repairs (heap reseeding path).
    if (round % 97 == 0) {
      const auto id = static_cast<NodeId>(rng.uniform_below(kN));
      values[id] = rng.uniform_int(5'000, 20'000);
      tracker.set_value(id, values[id]);
      ASSERT_EQ(tracker.topk_set(), true_topk_set(values, kK)) << round;
    }
  }
  EXPECT_GT(tracker.boundary_rescans(), 100u);
  EXPECT_GT(tracker.full_rebuilds(), 0u);
}

TEST(GroundTruthTracker, RejectsBadK) {
  EXPECT_THROW(GroundTruthTracker(4, 0), std::invalid_argument);
  EXPECT_THROW(GroundTruthTracker(4, 5), std::invalid_argument);
}

}  // namespace
}  // namespace topkmon
