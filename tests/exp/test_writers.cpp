// Round-trip tests for the CSV/JSON table writers and readers.
#include "exp/writers.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace topkmon::exp {
namespace {

Table sample_table() {
  Table t({"name", "msgs", "ratio"});
  t.add_row({"topk_filter", "1234", "1.50"});
  t.add_row({"naive, chg", "99", "-0.25"});   // comma forces CSV quoting
  t.add_row({"quo\"te", "0", "3e2"});         // quote + exponent spelling
  return t;
}

void expect_tables_equal(const Table& a, const Table& b) {
  ASSERT_EQ(a.header(), b.header());
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(a.row(r), b.row(r)) << "row " << r;
  }
}

TEST(Writers, CsvRoundTripsThroughStreams) {
  const Table t = sample_table();
  std::stringstream buf;
  t.write_csv(buf);
  const auto back = read_csv(buf);
  ASSERT_TRUE(back.has_value());
  expect_tables_equal(t, *back);
}

TEST(Writers, CsvRoundTripsThroughFiles) {
  const Table t = sample_table();
  const std::string path = ::testing::TempDir() + "writers_roundtrip.csv";
  ASSERT_TRUE(write_csv(t, path));
  const auto back = read_csv_file(path);
  ASSERT_TRUE(back.has_value());
  expect_tables_equal(t, *back);
  std::remove(path.c_str());
}

TEST(Writers, CsvHandlesEmbeddedNewlines) {
  Table t({"a", "b"});
  t.add_row({"line1\nline2", "x"});
  std::stringstream buf;
  t.write_csv(buf);
  const auto back = read_csv(buf);
  ASSERT_TRUE(back.has_value());
  expect_tables_equal(t, *back);
}

TEST(Writers, CsvRoundTripsBareCarriageReturns) {
  Table t({"a", "b"});
  t.add_row({"with\rreturn", "crlf\r\npair"});
  std::stringstream buf;
  t.write_csv(buf);
  const auto back = read_csv(buf);
  ASSERT_TRUE(back.has_value());
  expect_tables_equal(t, *back);
}

TEST(Writers, CsvFoldsCrlfRecordTerminators) {
  std::stringstream buf("a,b\r\n1,2\r\n");
  const auto back = read_csv(buf);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->rows(), 1u);
  EXPECT_EQ(back->row(0), (std::vector<std::string>{"1", "2"}));
}

TEST(Writers, CsvRejectsRaggedRows) {
  std::stringstream buf("a,b\n1,2,3\n");
  EXPECT_FALSE(read_csv(buf).has_value());
}

TEST(Writers, CsvRejectsUnterminatedQuote) {
  std::stringstream buf("a,b\n\"oops,2\n");
  EXPECT_FALSE(read_csv(buf).has_value());
}

TEST(Writers, JsonRoundTripsThroughStreams) {
  const Table t = sample_table();
  std::stringstream buf;
  write_json(t, buf);
  const auto back = read_json(buf);
  ASSERT_TRUE(back.has_value());
  expect_tables_equal(t, *back);
}

TEST(Writers, JsonRoundTripsThroughFiles) {
  const Table t = sample_table();
  const std::string path = ::testing::TempDir() + "writers_roundtrip.json";
  ASSERT_TRUE(write_json(t, path));
  const auto back = read_json_file(path);
  ASSERT_TRUE(back.has_value());
  expect_tables_equal(t, *back);
  std::remove(path.c_str());
}

TEST(Writers, JsonEmitsNumbersUnquoted) {
  Table t({"k", "v"});
  t.add_row({"a", "42"});
  std::stringstream buf;
  write_json(t, buf);
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"v\": 42"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"42\""), std::string::npos) << json;
}

TEST(Writers, JsonQuotesNonNumericLookalikes) {
  Table t({"v1", "v2", "v3", "v4", "v5"});
  // All strtod-parsable, none a valid JSON number: must stay quoted.
  t.add_row({"inf", "nan", "0x10", "007", "1."});
  std::stringstream buf;
  write_json(t, buf);
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"007\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"1.\""), std::string::npos) << json;
  std::stringstream reparse(json);
  const auto back2 = read_json(reparse);
  ASSERT_TRUE(back2.has_value());
  expect_tables_equal(t, *back2);
}

TEST(Writers, JsonAcceptsCanonicalNumberSpellings) {
  Table t({"a", "b", "c", "d"});
  t.add_row({"0", "-0.5", "1e9", "1.25E-3"});
  std::stringstream buf;
  write_json(t, buf);
  const std::string json = buf.str();
  EXPECT_EQ(json.find("\"0\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"a\": 0"), std::string::npos) << json;
  std::stringstream reparse(json);
  const auto back = read_json(reparse);
  ASSERT_TRUE(back.has_value());
  expect_tables_equal(t, *back);
}

TEST(Writers, JsonEscapesSpecialCharacters) {
  Table t({"weird \"col\""});
  t.add_row({"tab\there\nnewline\\backslash"});
  std::stringstream buf;
  write_json(t, buf);
  const auto back = read_json(buf);
  ASSERT_TRUE(back.has_value());
  expect_tables_equal(t, *back);
}

TEST(Writers, JsonRejectsMismatchedKeys) {
  std::stringstream buf(R"([{"a": 1}, {"b": 2}])");
  EXPECT_FALSE(read_json(buf).has_value());
}

TEST(Writers, ReadersRejectMissingFiles) {
  EXPECT_FALSE(read_csv_file("/nonexistent/x.csv").has_value());
  EXPECT_FALSE(read_json_file("/nonexistent/x.json").has_value());
}

}  // namespace
}  // namespace topkmon::exp
