// Tests for the parallel experiment engine: grid expansion, parallel ==
// serial determinism, thread-pool semantics, aggregation fixtures, and
// CSV/JSON round-trips.
#include "exp/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "exp/monitor_registry.hpp"
#include "exp/result_sink.hpp"
#include "exp/sweep_grid.hpp"
#include "exp/writers.hpp"

namespace topkmon::exp {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.ns = {8, 16};
  grid.ks = {2, 4};
  grid.monitors = {"topk_filter", "recompute"};
  grid.families = {StreamFamily::kRandomWalk, StreamFamily::kIidUniform};
  grid.trials = 2;
  grid.steps = 60;
  grid.base_seed = 99;
  return grid;
}

TEST(SweepGrid, ExpansionShapeAndOrdinals) {
  const auto grid = small_grid();
  const auto specs = grid.expand();
  EXPECT_EQ(specs.size(), grid.size());
  EXPECT_EQ(specs.size(), 2u * 2u * 2u * 2u * 2u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].ordinal, i);
  }
}

TEST(SweepGrid, SkipsInvalidKCells) {
  SweepGrid grid;
  grid.ns = {4, 16};
  grid.ks = {2, 8};  // k=8 invalid for n=4
  grid.trials = 1;
  const auto specs = grid.expand();
  EXPECT_EQ(specs.size(), 3u);
  for (const auto& s : specs) {
    EXPECT_LE(s.cfg.k, s.cfg.n);
  }
}

TEST(SweepGrid, SeedsDependOnCoordinatesNotExpansionOrder) {
  const auto grid = small_grid();
  const auto specs = grid.expand();
  std::set<std::uint64_t> seeds;
  for (const auto& s : specs) seeds.insert(s.cfg.seed);
  EXPECT_EQ(seeds.size(), specs.size());  // all distinct

  // A narrowed grid (one monitor) must reproduce the same seeds for the
  // cells it shares with the full grid.
  SweepGrid narrowed = grid;
  narrowed.monitors = {"topk_filter"};
  for (const auto& s : narrowed.expand()) {
    const auto expected = derive_trial_seed(
        grid.base_seed, s.cfg.n, s.cfg.k, /*monitor_index=*/0,
        /*family_index=*/s.stream.family == StreamFamily::kRandomWalk ? 0 : 1,
        s.trial);
    EXPECT_EQ(s.cfg.seed, expected);
  }
}

// The headline guarantee: a parallel sweep is bit-identical to a serial
// sweep of the same grid.
TEST(SweepRunner, ParallelMatchesSerialBitIdentical) {
  const auto grid = small_grid();
  const auto specs = grid.expand();

  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto rs = serial.run(specs);
  const auto rp = parallel.run(specs);

  ASSERT_EQ(rs.size(), rp.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].monitor_name, rp[i].monitor_name);
    EXPECT_EQ(rs[i].steps_executed, rp[i].steps_executed);
    EXPECT_EQ(rs[i].comm.total(), rp[i].comm.total());
    EXPECT_EQ(rs[i].monitor.filter_resets, rp[i].monitor.filter_resets);
    EXPECT_EQ(rs[i].monitor.handler_calls, rp[i].monitor.handler_calls);
    EXPECT_TRUE(rs[i].correct);
    EXPECT_TRUE(rp[i].correct);
  }

  // And the aggregated tables (the CLI's CSV rows) are byte-identical too.
  auto aggregate = [&](const std::vector<RunResult>& results) {
    ResultSink sink({"monitor", "workload"}, {"msgs_per_step"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
      sink.add({specs[i].monitor,
                std::string(family_name(specs[i].stream.family))},
               specs[i].ordinal, {results[i].messages_per_step()});
    }
    std::ostringstream csv;
    sink.to_table(4).write_csv(csv);
    return csv.str();
  };
  EXPECT_EQ(aggregate(rs), aggregate(rp));
}

TEST(SweepRunner, ParallelForCoversEveryIndexExactlyOnce) {
  SweepRunner runner(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  runner.parallel_for(kCount, [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SweepRunner, MapPreservesOrder) {
  SweepRunner runner(3);
  const auto out =
      runner.map<std::size_t>(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(SweepRunner, PropagatesExceptions) {
  SweepRunner runner(4);
  EXPECT_THROW(
      runner.parallel_for(100,
                          [](std::size_t i) {
                            if (i == 37) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  // The pool must stay usable after a failed batch.
  int ok = 0;
  runner.parallel_for(1, [&](std::size_t) { ok = 1; });
  EXPECT_EQ(ok, 1);
}

TEST(SweepRunner, ZeroJobsMeansHardwareConcurrency) {
  SweepRunner runner(0);
  EXPECT_GE(runner.jobs(), 1u);
}

TEST(SweepRunner, RunTrialMatchesDirectExecution) {
  TrialSpec spec;
  spec.cfg.n = 12;
  spec.cfg.k = 3;
  spec.cfg.steps = 40;
  spec.cfg.seed = 5;
  spec.stream.family = StreamFamily::kRandomWalk;
  spec.monitor = "topk_filter";

  const auto via_engine = run_trial(spec);

  auto monitor = make_monitor("topk_filter", 3);
  auto streams = make_stream_set(spec.stream, spec.cfg.n, spec.cfg.seed);
  const auto direct = run_monitor(*monitor, streams, spec.cfg);

  EXPECT_EQ(via_engine.comm.total(), direct.comm.total());
  EXPECT_EQ(via_engine.monitor.filter_resets, direct.monitor.filter_resets);
}

// ---------------------------------------------------------------------------
// Aggregation fixtures
// ---------------------------------------------------------------------------

TEST(ResultSink, MeanAndStddevMatchHandComputedFixture) {
  // Samples {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample stddev sqrt(32/7).
  ResultSink sink({"cell"}, {"metric"});
  const double samples[] = {2, 4, 4, 4, 5, 5, 7, 9};
  for (std::size_t i = 0; i < 8; ++i) {
    sink.add({"a"}, i, {samples[i]});
  }
  const Table t = sink.to_table(6);
  ASSERT_EQ(t.rows(), 1u);
  ASSERT_EQ(t.cols(), 3u);  // cell, metric, metric_sd
  EXPECT_EQ(t.header()[1], "metric");
  EXPECT_EQ(t.header()[2], "metric_sd");
  EXPECT_NEAR(std::stod(t.row(0)[1]), 5.0, 1e-6);
  EXPECT_NEAR(std::stod(t.row(0)[2]), std::sqrt(32.0 / 7.0), 1e-6);
}

TEST(ResultSink, InsertionOrderDoesNotChangeOutput) {
  auto fill = [](ResultSink& sink, bool reversed) {
    // Two cells × 3 trials with distinct values; ordinals fix fold order.
    const double vals[] = {1.0, 2.0, 4.0};
    for (int c = 0; c < 2; ++c) {
      for (int t = 0; t < 3; ++t) {
        const int tt = reversed ? 2 - t : t;
        const std::size_t ordinal = static_cast<std::size_t>(c * 3 + tt);
        sink.add({c == 0 ? "x" : "y"}, ordinal, {vals[tt] + c});
      }
    }
  };
  ResultSink forward({"cell"}, {"m"});
  ResultSink backward({"cell"}, {"m"});
  fill(forward, false);
  fill(backward, true);

  std::ostringstream a, b;
  forward.to_table(6).write_csv(a);
  backward.to_table(6).write_csv(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ResultSink, CellsOrderedByFirstOrdinal) {
  ResultSink sink({"cell"}, {"m"});
  sink.add({"late"}, 10, {1.0});
  sink.add({"early"}, 2, {1.0});
  const Table t = sink.to_table();
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.row(0)[0], "early");
  EXPECT_EQ(t.row(1)[0], "late");
}

TEST(ResultSink, RejectsArityMismatchAndDuplicates) {
  ResultSink sink({"cell"}, {"m"});
  EXPECT_THROW(sink.add({"a", "b"}, 0, {1.0}), std::invalid_argument);
  EXPECT_THROW(sink.add({"a"}, 0, {1.0, 2.0}), std::invalid_argument);
  sink.add({"a"}, 0, {1.0});
  EXPECT_THROW(sink.add({"a"}, 0, {2.0}), std::invalid_argument);
}

TEST(ResultSink, ThreadSafeConcurrentAdds) {
  ResultSink sink({"cell"}, {"m"});
  SweepRunner runner(4);
  runner.parallel_for(200, [&](std::size_t i) {
    sink.add({i % 2 ? "odd" : "even"}, i, {static_cast<double>(i)});
  });
  EXPECT_EQ(sink.cells(), 2u);
  const Table t = sink.to_table(1);
  ASSERT_EQ(t.rows(), 2u);
  // even: mean of 0,2,...,198 = 99; odd: mean of 1,3,...,199 = 100.
  EXPECT_EQ(t.row(0)[0], "even");
  EXPECT_NEAR(std::stod(t.row(0)[1]), 99.0, 1e-9);
  EXPECT_NEAR(std::stod(t.row(1)[1]), 100.0, 1e-9);
}

}  // namespace
}  // namespace topkmon::exp
