// The PR4 bit-compatibility contract: the activity-driven sparse event
// loop (sparse per-tick scan + needs-observe-gated on_observe + changed-
// node detection) must be indistinguishable from the legacy dense loop —
// same messages by direction and kind, same monitor counters (which see
// every re-raised violation signal), same per-step answers, same error
// pattern — for every monitor on every network policy it can run on,
// across both quiet-capable (sparse wrapper) and arbitrary workloads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "sim/message.hpp"

namespace topkmon {
namespace {

using exp::Scenario;
using exp::run_scenario;

struct LoopTrace {
  RunResult result;
  std::vector<std::vector<NodeId>> answers;
};

LoopTrace run_loop(const std::string& monitor, const std::string& family,
                   const std::string& network, bool dense) {
  Scenario sc;
  sc.monitor = monitor;
  sc.with_stream_family(family);
  sc.stream.walk.max_step = 5'000;
  sc.with_network(network);
  sc.n = 24;
  sc.k = 5;
  sc.steps = 120;
  sc.seed = 77;
  sc.dense_loop = dense;
  // Lossy / budgeted networks legitimately diverge from the ground truth;
  // the invariant under test is that both loops diverge identically.
  sc.validation = RunConfig::Validation::kWeak;
  sc.throw_on_error = false;
  LoopTrace trace;
  sc.on_step = [&trace](TimeStep, const std::vector<Value>&,
                        const std::vector<NodeId>& answer) {
    trace.answers.push_back(answer);
  };
  trace.result = run_scenario(sc);
  return trace;
}

void expect_equivalent(const std::string& monitor, const std::string& family,
                       const std::string& network) {
  SCOPED_TRACE(monitor + " / " + family + " / " + network);
  const LoopTrace sparse = run_loop(monitor, family, network, false);
  const LoopTrace dense = run_loop(monitor, family, network, true);

  // Messages: totals, directions, and every kind (beacons, announces,
  // filter updates, probes ... — a missed coin flip or skipped signal
  // shifts these immediately).
  EXPECT_EQ(sparse.result.comm.total(), dense.result.comm.total());
  EXPECT_EQ(sparse.result.comm.upstream(), dense.result.comm.upstream());
  EXPECT_EQ(sparse.result.comm.unicast(), dense.result.comm.unicast());
  EXPECT_EQ(sparse.result.comm.broadcast(), dense.result.comm.broadcast());
  for (std::size_t k = 0; k < kNumMsgKinds; ++k) {
    EXPECT_EQ(sparse.result.comm.by_kind(static_cast<MsgKind>(k)),
              dense.result.comm.by_kind(static_cast<MsgKind>(k)))
        << msg_kind_name(static_cast<MsgKind>(k));
  }

  // Monitor counters, including the violation counts fed by per-step
  // signals (a node in violation must re-signal every step even when its
  // value is unchanged — the needs-observe contract).
  EXPECT_EQ(sparse.result.monitor.violation_steps,
            dense.result.monitor.violation_steps);
  EXPECT_EQ(sparse.result.monitor.violations, dense.result.monitor.violations);
  EXPECT_EQ(sparse.result.monitor.protocol_runs,
            dense.result.monitor.protocol_runs);
  EXPECT_EQ(sparse.result.monitor.filter_resets,
            dense.result.monitor.filter_resets);
  EXPECT_EQ(sparse.result.monitor.full_rebuilds,
            dense.result.monitor.full_rebuilds);

  // Validation outcome and the answer itself, step by step.
  EXPECT_EQ(sparse.result.error_steps, dense.result.error_steps);
  EXPECT_EQ(sparse.result.correct, dense.result.correct);
  EXPECT_EQ(sparse.result.first_error_step, dense.result.first_error_step);
  ASSERT_EQ(sparse.answers.size(), dense.answers.size());
  for (std::size_t t = 0; t < sparse.answers.size(); ++t) {
    EXPECT_EQ(sparse.answers[t], dense.answers[t]) << "step " << t;
  }
}

const std::vector<std::string>& workloads() {
  // One quiet-capable family (activity interface + sparse observe) and
  // one dense stochastic family (previous-value compare path).
  static const std::vector<std::string> w{
      "sparse?rate=0.2,inner=random_walk", "random_walk"};
  return w;
}

TEST(SparseDenseLoop, AllMonitorsOnInstant) {
  for (const char* monitor :
       {"topk_filter", "topk_filter?nobeacon", "ordered", "slack", "dominance",
        "recompute", "naive", "naive_chg", "approx?eps=1000",
        "multi_k?ks=2+5"}) {
    for (const std::string& family : workloads()) {
      expect_equivalent(monitor, family, "instant");
    }
  }
}

TEST(SparseDenseLoop, NativeMonitorsOnScheduledNetworks) {
  for (const char* monitor : {"topk_filter", "naive", "naive_chg"}) {
    for (const char* network :
         {"delay=2,jitter=1", "drop=0.1", "batch=2", "delay=1,drop=0.05",
          "delay=3,ticks=4", "delay=1,jitter=2,ticks=8"}) {
      for (const std::string& family : workloads()) {
        expect_equivalent(monitor, family, network);
      }
    }
  }
}

TEST(SparseDenseLoop, StrictValidationStaysExactOnInstant) {
  // Beyond mutual equivalence: on the instant network the sparse loop
  // must also stay exactly correct against the ground truth.
  Scenario sc;
  sc.monitor = "topk_filter";
  sc.with_stream_family("sparse?rate=0.1,inner=random_walk");
  sc.stream.walk.max_step = 20'000;
  sc.n = 32;
  sc.k = 6;
  sc.steps = 250;
  sc.seed = 5;
  sc.validation = RunConfig::Validation::kStrict;
  const RunResult r = run_scenario(sc);  // throws on divergence
  EXPECT_TRUE(r.correct);
}

}  // namespace
}  // namespace topkmon
