// The Scenario layer: registry spec parsing, declarative construction,
// run_scenario semantics across network policies, and the graceful-
// degradation properties of the native role implementations.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "exp/monitor_registry.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep_grid.hpp"
#include "exp/sweep_runner.hpp"

namespace topkmon {
namespace {

using exp::Scenario;
using exp::run_scenario;

Scenario base_scenario(const std::string& monitor) {
  Scenario sc;
  sc.monitor = monitor;
  sc.stream.family = StreamFamily::kRandomWalk;
  sc.stream.walk.max_step = 10'000;
  sc.n = 16;
  sc.k = 4;
  sc.steps = 150;
  sc.seed = 21;
  return sc;
}

TEST(MonitorSpecTest, ParameterizedSpecsConstruct) {
  Cluster cluster(8, 1);
  for (const char* spec :
       {"topk_filter", "topk_filter?nobeacon", "slack?alpha=0.25,adaptive",
        "approx?eps=100", "multi_k?ks=1+2+4", "naive_chg", "ordered",
        "dominance", "recompute?nobeacon=true"}) {
    SCOPED_TRACE(spec);
    EXPECT_TRUE(exp::is_known_monitor(spec));
    EXPECT_NE(exp::make_monitor(spec, 2), nullptr);
    EXPECT_NE(exp::make_role_pair(cluster, spec, 2).coordinator, nullptr);
  }
}

TEST(MonitorSpecTest, MalformedSpecsThrow) {
  EXPECT_THROW(exp::make_monitor("no_such_monitor", 2),
               std::invalid_argument);
  EXPECT_THROW(exp::make_monitor("topk_filter?bogus=1", 2),
               std::invalid_argument);
  EXPECT_THROW(exp::make_monitor("slack?alpha=abc", 2),
               std::invalid_argument);
  EXPECT_THROW(exp::make_monitor("multi_k?ks=", 2), std::invalid_argument);
  EXPECT_FALSE(exp::is_known_monitor("no_such_monitor"));
  EXPECT_TRUE(exp::is_known_monitor("topk_filter?bogus=1"));  // base name
}

TEST(MonitorSpecTest, NativeListMatchesRolePairs) {
  Cluster cluster(4, 1);
  for (const auto& name : exp::all_monitor_names()) {
    const auto pair = exp::make_role_pair(cluster, name, 2);
    const bool listed_native =
        std::find(exp::native_monitor_names().begin(),
                  exp::native_monitor_names().end(),
                  name) != exp::native_monitor_names().end();
    EXPECT_EQ(pair.native, listed_native) << name;
    EXPECT_EQ(pair.lockstep == nullptr, pair.native) << name;
    EXPECT_EQ(pair.nodes.size(), cluster.size()) << name;
  }
}

TEST(ScenarioTest, FluentHelpersParseNames) {
  Scenario sc;
  sc.with_monitor("naive").with_stream_family("zipf").with_network(
      "delay=2,ticks=8");
  EXPECT_EQ(sc.monitor, "naive");
  EXPECT_EQ(sc.stream.family, StreamFamily::kZipf);
  EXPECT_EQ(sc.network.delay, 2u);
  EXPECT_EQ(sc.network.ticks_per_step, 8u);
  EXPECT_THROW(sc.with_stream_family("nope"), std::invalid_argument);
  EXPECT_THROW(sc.with_network("warp=1"), std::invalid_argument);
}

TEST(ScenarioTest, RunsAreDeterministic) {
  for (const char* net :
       {"instant", "delay=2", "drop=0.1", "delay=1,ticks=4"}) {
    SCOPED_TRACE(net);
    Scenario sc = base_scenario("topk_filter");
    sc.with_network(net);
    sc.throw_on_error = false;
    const auto a = run_scenario(sc);
    const auto b = run_scenario(sc);
    EXPECT_EQ(a.comm.total(), b.comm.total());
    EXPECT_EQ(a.comm.upstream(), b.comm.upstream());
    EXPECT_EQ(a.error_steps, b.error_steps);
    EXPECT_EQ(a.network, parse_network_spec(net).name());
  }
}

TEST(ScenarioTest, FilterStaysExactUnderPureDelay) {
  // Run-to-quiescence + lossless delay: sessions wait out the lag, so
  // Algorithm 1 must remain strictly correct — latency alone costs
  // messages (weaker beacon pruning), never answers.
  Scenario instant = base_scenario("topk_filter");
  const auto r0 = run_scenario(instant);

  Scenario delayed = base_scenario("topk_filter");
  delayed.with_network("delay=3");
  const auto r3 = run_scenario(delayed);  // throws on any divergence

  EXPECT_TRUE(r3.correct);
  EXPECT_GE(r3.comm.upstream(), r0.comm.upstream());
}

TEST(ScenarioTest, NaiveGoesStaleOnceDelayExceedsCadence) {
  // iid uniform reshuffles the top-k almost every step, so a replica even
  // one observation behind is almost always wrong.
  Scenario on_time = base_scenario("naive");
  on_time.stream.family = StreamFamily::kIidUniform;
  on_time.with_network("delay=2,ticks=4");
  on_time.throw_on_error = false;
  EXPECT_EQ(run_scenario(on_time).error_steps, 0u);

  Scenario late = base_scenario("naive");
  late.stream.family = StreamFamily::kIidUniform;
  late.with_network("delay=12,ticks=4");
  late.throw_on_error = false;
  EXPECT_GT(run_scenario(late).error_steps, 100u);
}

TEST(ScenarioTest, LossIsRecordedNotThrownWhenTolerated) {
  Scenario sc = base_scenario("topk_filter");
  sc.with_network("drop=0.2");
  sc.throw_on_error = false;
  const auto r = run_scenario(sc);
  EXPECT_EQ(r.steps_executed, sc.steps + 1);
  EXPECT_GT(r.error_steps, 0u);   // 20% loss must hurt a stateful monitor
  EXPECT_FALSE(r.correct);
  EXPECT_DOUBLE_EQ(r.error_rate(),
                   static_cast<double>(r.error_steps) /
                       static_cast<double>(r.steps_executed));
}

TEST(ScenarioTest, RejectsInvalidShapes) {
  Scenario sc = base_scenario("topk_filter");
  sc.k = 0;
  EXPECT_THROW(run_scenario(sc), std::invalid_argument);
  sc.k = sc.n + 1;
  EXPECT_THROW(run_scenario(sc), std::invalid_argument);
}

TEST(SweepGridTest, NetworkAxisMultipliesCellsButNotSeeds) {
  exp::SweepGrid grid;
  grid.ns = {8};
  grid.ks = {2};
  grid.monitors = {"naive"};
  grid.families = {StreamFamily::kRandomWalk};
  grid.networks = {NetworkSpec{}, parse_network_spec("delay=1")};
  grid.trials = 2;
  grid.steps = 10;

  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), grid.size());
  ASSERT_EQ(specs.size(), 4u);
  // Same trial under different networks replays the same seed (paired
  // comparison); different trials differ.
  EXPECT_EQ(specs[0].cfg.seed, specs[2].cfg.seed);
  EXPECT_EQ(specs[1].cfg.seed, specs[3].cfg.seed);
  EXPECT_NE(specs[0].cfg.seed, specs[1].cfg.seed);
  EXPECT_TRUE(specs[0].network.is_instant());
  EXPECT_EQ(specs[2].network.delay, 1u);

  // And the engine runs them end to end.
  exp::SweepRunner runner(1);
  const auto results = runner.run(specs);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].comm.total(), results[2].comm.total());
}

}  // namespace
}  // namespace topkmon
