// Monitor-spec parameter round-trips for the five newly-native ports:
// every documented `?key=value` must reach both factories (lock-step
// make_monitor and native make_role_pair) with the same meaning — the
// twin runs of the differential harness only prove something if both
// sides were built from the same configuration. Plus the composition
// rules: `?shards=` is a deployment parameter that must split off
// cleanly (and be rejected where no sharded deployment exists), and
// `?suspect` is a native-roles-only knob accepted exactly where the
// suspicion machinery lives.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "exp/monitor_registry.hpp"
#include "exp/scenario.hpp"
#include "sim/cluster.hpp"

namespace topkmon {
namespace {

std::string native_name(const std::string& spec, std::size_t k = 4) {
  Cluster cluster(16, 1);
  const auto pair = exp::make_role_pair(cluster, spec, k);
  EXPECT_TRUE(pair.native) << spec;
  return std::string(pair.coordinator->name());
}

std::string lockstep_name(const std::string& spec, std::size_t k = 4) {
  return std::string(exp::make_monitor(spec, k)->name());
}

TEST(PortParams, NamesRoundTripThroughBothFactories) {
  // name() encodes the effective configuration (e.g. the slack placement
  // mode), so twin name equality pins that a parameter reached both
  // implementations — the harness compares monitor_name first.
  for (const char* spec :
       {"slack", "slack?alpha=0.25", "slack?adaptive", "dominance", "ordered",
        "approx?eps=64", "multi_k", "multi_k?ks=2+8+16"}) {
    SCOPED_TRACE(spec);
    EXPECT_EQ(native_name(spec), lockstep_name(spec));
  }
  EXPECT_EQ(native_name("slack?adaptive"), "slack_adaptive");
  EXPECT_EQ(native_name("slack?alpha=0.1"), "slack_fixed");
  EXPECT_EQ(native_name("dominance"), "dominance_midpoint");
  EXPECT_EQ(native_name("ordered"), "ordered_topk");
  EXPECT_EQ(native_name("approx?eps=64"), "approx_topk");
  EXPECT_EQ(native_name("multi_k?ks=2+8"), "multi_k");
}

TEST(PortParams, UnknownAndMalformedParamsRejectOnBothPaths) {
  Cluster cluster(16, 1);
  for (const char* spec :
       {"dominance?alpha=1",      // dominance takes no parameters
        "ordered?alpha=1",        // ordered takes only nobeacon
        "slack?eps=64",           // eps belongs to approx
        "slack?alpha=abc",        // unparseable double
        "approx?eps=abc",         // unparseable int
        "multi_k?ks=",            // empty list
        "multi_k?ks=5+2",         // not strictly increasing
        "multi_k?ks=4+4"}) {      // duplicates are not increasing either
    SCOPED_TRACE(spec);
    EXPECT_THROW(exp::make_monitor(spec, 4), std::invalid_argument);
    EXPECT_THROW(exp::make_role_pair(cluster, spec, 4),
                 std::invalid_argument);
  }
}

TEST(PortParams, SuspectKnobIsNativeOnlyAndScoped) {
  Cluster cluster(16, 1);
  // Accepted where the suspicion machinery exists (the filter family and
  // the naive baselines)...
  for (const char* spec :
       {"topk_filter?suspect", "approx?eps=64,suspect", "naive?suspect",
        "naive_chg?suspect"}) {
    SCOPED_TRACE(spec);
    EXPECT_TRUE(exp::make_role_pair(cluster, spec, 4).native);
  }
  // ...rejected on ports without it (a silently ignored `?suspect` would
  // report an adversarial sweep as hardened when it never was), and on
  // the lock-step factory (native-roles-only knob).
  for (const char* spec : {"slack?suspect", "dominance?suspect",
                           "ordered?suspect", "multi_k?suspect"}) {
    SCOPED_TRACE(spec);
    EXPECT_THROW(exp::make_role_pair(cluster, spec, 4),
                 std::invalid_argument);
  }
  EXPECT_THROW(exp::make_monitor("approx?eps=64,suspect", 4),
               std::invalid_argument);
}

TEST(PortParams, ShardsParamSplitsAndComposes) {
  // `?shards=` never reaches the monitor factories: it splits off as a
  // deployment property, leaving the remaining spec intact in order.
  const auto [slack_rest, slack_shards] =
      exp::split_shards_param("slack?shards=2,alpha=0.1");
  EXPECT_EQ(slack_rest, "slack?alpha=0.1");
  EXPECT_EQ(slack_shards, 2u);
  const auto [multik_rest, multik_shards] =
      exp::split_shards_param("multi_k?ks=2+8,shards=4");
  EXPECT_EQ(multik_rest, "multi_k?ks=2+8");
  EXPECT_EQ(multik_shards, 4u);
  const auto [plain_rest, plain_shards] = exp::split_shards_param("ordered");
  EXPECT_EQ(plain_rest, "ordered");
  EXPECT_EQ(plain_shards, 0u);  // 0 = "not given", distinct from =1
}

TEST(PortParams, ShardedDeploymentRejectsPortsWithoutOne) {
  // The two-tier sharded runner supports the filter/naive families only;
  // the newly-native ports must be rejected up front with a clear error,
  // not run monolithically under a silently dropped parameter.
  for (const char* monitor : {"slack?shards=2", "dominance?shards=2",
                              "ordered?shards=2", "approx?eps=64,shards=2",
                              "multi_k?ks=2+8,shards=2"}) {
    SCOPED_TRACE(monitor);
    exp::Scenario sc;
    sc.monitor = monitor;
    sc.n = 16;
    sc.k = 4;
    sc.steps = 5;
    EXPECT_THROW(exp::run_scenario(sc), std::invalid_argument);
  }
}

}  // namespace
}  // namespace topkmon
