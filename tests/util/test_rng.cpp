// Unit + statistical tests for the PRNG. Statistical bounds use generous
// tolerances so the suite is deterministic and robust (fixed seeds).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace topkmon {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 12345;
  std::uint64_t s2 = 12345;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng rng(23);
  std::array<int, 8> counts{};
  constexpr int kN = 80'000;
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 7))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 8.0, kN / 8.0 * 0.06);
  }
}

TEST(Rng, UniformBelowBounds) {
  Rng rng(29);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform_below(37), 37u);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(31);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(37);
  constexpr int kN = 100'000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BernoulliPow2ProbabilityOne) {
  Rng rng(41);
  // r >= log_n means probability 2^r/N >= 1: must always succeed.
  for (std::uint32_t log_n = 0; log_n <= 10; ++log_n) {
    EXPECT_TRUE(rng.bernoulli_pow2(log_n, log_n));
    EXPECT_TRUE(rng.bernoulli_pow2(log_n + 3, log_n));
  }
}

TEST(Rng, BernoulliPow2Frequency) {
  // P(success) = 2^r / 2^log_n exactly; check empirically for several r.
  constexpr int kN = 200'000;
  for (std::uint32_t r : {0u, 2u, 5u}) {
    Rng rng(43 + r);
    constexpr std::uint32_t kLogN = 8;  // N = 256
    int hits = 0;
    for (int i = 0; i < kN; ++i) hits += rng.bernoulli_pow2(r, kLogN) ? 1 : 0;
    const double expect = std::pow(2.0, static_cast<double>(r)) / 256.0;
    EXPECT_NEAR(static_cast<double>(hits) / kN, expect, expect * 0.15 + 0.001)
        << "r=" << r;
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(47);
  constexpr int kN = 200'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, DeriveIsDeterministic) {
  const Rng root(55);
  Rng a = root.derive(3);
  Rng b = root.derive(3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DeriveChildrenIndependent) {
  const Rng root(59);
  Rng a = root.derive(1);
  Rng b = root.derive(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, DeriveDoesNotPerturbParent) {
  Rng parent(61);
  Rng probe(61);
  (void)parent.derive(9);
  (void)parent.derive(10);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(parent.next_u64(), probe.next_u64());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(67);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w.begin(), w.end());
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);  // same multiset
}

TEST(Rng, ShuffleUniformFirstElement) {
  Rng rng(71);
  std::array<int, 5> counts{};
  constexpr int kTrials = 50'000;
  for (int t = 0; t < kTrials; ++t) {
    std::array<int, 5> v{0, 1, 2, 3, 4};
    rng.shuffle(v.begin(), v.end());
    ++counts[static_cast<std::size_t>(v[0])];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kTrials / 5.0, kTrials / 5.0 * 0.08);
  }
}

}  // namespace
}  // namespace topkmon
