// Unit tests for the fundamental types and arithmetic helpers.
#include "util/types.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

namespace topkmon {
namespace {

TEST(Midpoint, SimplePositive) {
  EXPECT_EQ(midpoint(0, 10), 5);
  EXPECT_EQ(midpoint(0, 11), 5);
  EXPECT_EQ(midpoint(3, 5), 4);
  EXPECT_EQ(midpoint(1, 2), 1);
}

TEST(Midpoint, EqualEndpoints) {
  EXPECT_EQ(midpoint(7, 7), 7);
  EXPECT_EQ(midpoint(-7, -7), -7);
  EXPECT_EQ(midpoint(0, 0), 0);
}

TEST(Midpoint, NegativeValues) {
  EXPECT_EQ(midpoint(-10, 0), -5);
  const Value m = midpoint(-3, -2);
  EXPECT_GE(m, -3);
  EXPECT_LE(m, -2);
}

TEST(Midpoint, MixedSign) {
  const Value m = midpoint(-5, 6);
  EXPECT_GE(m, -5);
  EXPECT_LE(m, 6);
}

TEST(Midpoint, NoOverflowAtExtremes) {
  // Naive (lo + hi) / 2 would overflow; the implementation must not.
  const Value big = std::numeric_limits<Value>::max() - 1;
  const Value m = midpoint(big - 10, big);
  EXPECT_GE(m, big - 10);
  EXPECT_LE(m, big);

  const Value small = std::numeric_limits<Value>::min() + 2;
  const Value m2 = midpoint(small, small + 10);
  EXPECT_GE(m2, small);
  EXPECT_LE(m2, small + 10);
}

TEST(Midpoint, AlwaysWithinRangeSweep) {
  for (Value lo = -25; lo <= 25; ++lo) {
    for (Value hi = lo; hi <= 25; ++hi) {
      const Value m = midpoint(lo, hi);
      EXPECT_GE(m, lo) << "lo=" << lo << " hi=" << hi;
      EXPECT_LE(m, hi) << "lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(Midpoint, HalvesGap) {
  // The Algorithm 1 analysis needs the gap to at least halve when the
  // boundary is re-placed at the midpoint: max(m - lo, hi - m) <=
  // ceil((hi - lo) / 2).
  for (Value lo = -20; lo <= 20; ++lo) {
    for (Value hi = lo; hi <= 20; ++hi) {
      const Value m = midpoint(lo, hi);
      const Value gap = hi - lo;
      EXPECT_LE(m - lo, (gap + 1) / 2);
      EXPECT_LE(hi - m, (gap + 1) / 2);
    }
  }
}

TEST(InClosed, Basics) {
  EXPECT_TRUE(in_closed(5, 0, 10));
  EXPECT_TRUE(in_closed(0, 0, 10));
  EXPECT_TRUE(in_closed(10, 0, 10));
  EXPECT_FALSE(in_closed(-1, 0, 10));
  EXPECT_FALSE(in_closed(11, 0, 10));
}

TEST(InClosed, InfinitySentinels) {
  EXPECT_TRUE(in_closed(0, kMinusInf, kPlusInf));
  EXPECT_TRUE(in_closed(kMinusInf, kMinusInf, kPlusInf));
  EXPECT_TRUE(in_closed(kPlusInf, kMinusInf, kPlusInf));
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_EQ(next_pow2(1ull << 62), 1ull << 62);
}

TEST(FloorLog2, Values) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(1ull << 40), 40u);
}

TEST(CeilLog2, Values) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Log2Identities, PowerRelation) {
  for (std::uint64_t x = 1; x < 100'000; x = x * 3 + 1) {
    const auto p = next_pow2(x);
    EXPECT_GE(p, x);
    EXPECT_LT(p / 2, x) << "next_pow2 not tight for " << x;
    EXPECT_EQ(floor_log2(p), ceil_log2(x) + (x == 1 ? 0 : 0));
  }
}

}  // namespace
}  // namespace topkmon
