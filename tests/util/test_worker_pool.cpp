// WorkerPool: the persistent fork-join pool under SimDriver's parallel
// tick loop. The contract under test: run(count, fn) invokes fn(i) for
// every i in [0, count) exactly once (static stride assignment — worker w
// owns i ≡ w (mod threads+1), so the partition itself is deterministic),
// returns only after all invocations finish (the synchronizes-with edge
// the driver's merge phase relies on), and the pool is reusable across
// batches including empty ones.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include "util/worker_pool.hpp"

namespace topkmon {
namespace {

TEST(WorkerPool, EveryIndexExactlyOnce) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.threads(), 3u);
  std::vector<std::atomic<int>> hits(100);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, RunReturnsAfterAllWorkFinished) {
  // Writes from fn must be visible to the caller after run() — the
  // happens-before edge through the pool's join handshake.
  WorkerPool pool(4);
  std::vector<std::size_t> out(1000, 0);  // plain, not atomic: on purpose
  pool.run(out.size(), [&](std::size_t i) { out[i] = i + 1; });
  std::size_t sum = std::accumulate(out.begin(), out.end(), std::size_t{0});
  EXPECT_EQ(sum, out.size() * (out.size() + 1) / 2);
}

TEST(WorkerPool, ZeroCountIsANoop) {
  WorkerPool pool(2);
  pool.run(0, [](std::size_t) { FAIL() << "fn called for empty batch"; });
}

TEST(WorkerPool, CountSmallerThanThreads) {
  // Most workers wake to find they own no indices; they must park again
  // without touching the batch.
  WorkerPool pool(7);
  std::vector<std::atomic<int>> hits(2);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(WorkerPool, ZeroThreadsRunsInline) {
  // threads = 0 is the degenerate pool the driver uses for workers = 1:
  // everything executes on the caller, no threads spawned.
  WorkerPool pool(0);
  EXPECT_EQ(pool.threads(), 0u);
  std::vector<int> hits(10, 0);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(WorkerPool, ReusableAcrossBatches) {
  // One tick = one batch; a simulation runs millions. The generation
  // counter must keep batches distinct back-to-back.
  WorkerPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.run(8, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200u * 8u);
}

}  // namespace
}  // namespace topkmon
