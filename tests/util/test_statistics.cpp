// Unit tests for OnlineStats / Quantiles / Histogram / harmonic.
#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace topkmon {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(3);
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.next_double() * 100.0 - 50.0;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Quantiles, ThrowsOnEmpty) {
  Quantiles q;
  EXPECT_THROW(q.quantile(0.5), std::logic_error);
}

TEST(Quantiles, SingleSample) {
  Quantiles q;
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 5.0);
}

TEST(Quantiles, MedianOfOddSet) {
  Quantiles q;
  for (const double x : {9.0, 1.0, 5.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.median(), 5.0);
}

TEST(Quantiles, InterpolatesBetweenRanks) {
  Quantiles q;
  q.add(0.0);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.5);
}

TEST(Quantiles, ExtremesAreMinMax) {
  Quantiles q;
  Rng rng(5);
  double lo = 1e18;
  double hi = -1e18;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double() * 7.0;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    q.add(x);
  }
  EXPECT_DOUBLE_EQ(q.quantile(0.0), lo);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), hi);
}

TEST(Quantiles, ClampsOutOfRangeQ) {
  Quantiles q;
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.5), 2.0);
}

TEST(Quantiles, TailFraction) {
  Quantiles q;
  for (int i = 1; i <= 100; ++i) q.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(q.tail_fraction_above(90.0), 0.10);
  EXPECT_DOUBLE_EQ(q.tail_fraction_above(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.tail_fraction_above(100.0), 0.0);
}

TEST(Quantiles, AddAfterQueryResorts) {
  Quantiles q;
  q.add(1.0);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.median(), 2.0);
  q.add(100.0);
  EXPECT_DOUBLE_EQ(q.median(), 3.0);
}

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bucket 0
  h.add(9.5);    // bucket 4
  h.add(-3.0);   // clamped to bucket 0
  h.add(42.0);   // clamped to bucket 4
  h.add(5.0);    // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.bucket(1), 0u);
  EXPECT_EQ(h.bucket(3), 0u);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, AsciiRendersNonEmptyBuckets) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.6);
  h.add(3.5);
  const auto art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
}

TEST(Harmonic, KnownValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(4), 25.0 / 12.0, 1e-12);
}

TEST(Harmonic, LogApproximation) {
  // H_n ~ ln n + gamma.
  constexpr double kGamma = 0.5772156649;
  for (const std::uint64_t n : {100ull, 10'000ull}) {
    EXPECT_NEAR(harmonic(n), std::log(static_cast<double>(n)) + kGamma, 0.01);
  }
}

}  // namespace
}  // namespace topkmon
