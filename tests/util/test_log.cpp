// Unit tests for the leveled logger.
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace topkmon {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Log::level();
    Log::set_sink(&sink_);
  }
  void TearDown() override {
    Log::set_level(saved_level_);
    Log::set_sink(nullptr);
  }
  std::ostringstream sink_;
  LogLevel saved_level_ = LogLevel::Warn;
};

TEST_F(LogTest, RespectsLevelThreshold) {
  Log::set_level(LogLevel::Warn);
  TOPKMON_LOG(Debug) << "hidden";
  TOPKMON_LOG(Info) << "hidden too";
  EXPECT_TRUE(sink_.str().empty());
  TOPKMON_LOG(Warn) << "visible";
  EXPECT_NE(sink_.str().find("visible"), std::string::npos);
}

TEST_F(LogTest, ErrorAlwaysAboveWarn) {
  Log::set_level(LogLevel::Error);
  TOPKMON_LOG(Warn) << "suppressed";
  EXPECT_TRUE(sink_.str().empty());
  TOPKMON_LOG(Error) << "boom";
  EXPECT_NE(sink_.str().find("[ERROR] boom"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::Off);
  TOPKMON_LOG(Error) << "nope";
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LogTest, StreamsMixedTypes) {
  Log::set_level(LogLevel::Debug);
  TOPKMON_LOG(Debug) << "x=" << 42 << " y=" << 1.5;
  EXPECT_NE(sink_.str().find("x=42 y=1.5"), std::string::npos);
}

TEST(LogLevelName, Names) {
  EXPECT_STREQ(Log::level_name(LogLevel::Error), "ERROR");
  EXPECT_STREQ(Log::level_name(LogLevel::Debug), "DEBUG");
  EXPECT_STREQ(Log::level_name(LogLevel::Off), "OFF");
}

}  // namespace
}  // namespace topkmon
