// Unit tests for the Table / CSV / formatting helpers.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace topkmon {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, StoresRows) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.row(1)[0], "3");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"a", "1000"});
  t.add_row({"longer", "2"});
  std::ostringstream out;
  t.print(out);
  const auto text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Every line should have the same length (alignment).
  std::istringstream lines(text);
  std::string line;
  std::size_t len = 0;
  while (std::getline(lines, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Table, CsvRoundTrip) {
  const std::string path = "/tmp/topkmon_test_table.csv";
  Table t({"a", "b"});
  t.add_row({"1", "hello"});
  t.add_row({"2", "with,comma"});
  t.add_row({"3", "with\"quote"});
  ASSERT_TRUE(t.write_csv(path));

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,hello");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Table, CsvFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.write_csv("/nonexistent_dir_xyz/file.csv"));
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(2.5, 1), "2.5");
  EXPECT_EQ(fmt(-1.005, 2), "-1.00");
}

TEST(FmtCount, GroupsThousands) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1'000");
  EXPECT_EQ(fmt_count(1234567), "1'234'567");
  EXPECT_EQ(fmt_count(1000000000ull), "1'000'000'000");
}

}  // namespace
}  // namespace topkmon
