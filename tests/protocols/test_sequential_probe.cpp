// Tests for the deterministic sequential-probe scheme (Theorem 4.3's
// lower-bound construction): correctness and the H_n left-to-right-maxima
// behaviour on random permutations.
#include "protocols/sequential_probe.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/statistics.hpp"

namespace topkmon {
namespace {

Cluster make_cluster(const std::vector<Value>& values) {
  // Cluster is neither copyable nor movable; the values constructor
  // builds the fixture in place (guaranteed elision).
  return Cluster(values, 1);
}

TEST(SequentialProbe, EmptyOrder) {
  auto c = make_cluster({1});
  const auto r = run_sequential_probe_max(c, {});
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.messages(), 0u);
}

TEST(SequentialProbe, FindsMaximum) {
  const std::vector<Value> values{3, 9, 1, 7};
  auto c = make_cluster(values);
  const auto r = run_sequential_probe_max(c, c.all_ids());
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.winner, 1u);
  EXPECT_EQ(r.maximum, 9);
}

TEST(SequentialProbe, AscendingOrderIsWorstCase) {
  // Every node is a new left-to-right maximum: n reports.
  std::vector<Value> values(16);
  std::iota(values.begin(), values.end(), 0);
  auto c = make_cluster(values);
  const auto r = run_sequential_probe_max(c, c.all_ids());
  EXPECT_EQ(r.reports, 16u);
  EXPECT_EQ(r.broadcasts, 16u);
}

TEST(SequentialProbe, DescendingOrderIsBestCase) {
  std::vector<Value> values(16);
  for (std::size_t i = 0; i < 16; ++i) values[i] = 100 - static_cast<Value>(i);
  auto c = make_cluster(values);
  const auto r = run_sequential_probe_max(c, c.all_ids());
  EXPECT_EQ(r.reports, 1u);  // only the first node speaks
  EXPECT_EQ(r.maximum, 100);
}

TEST(SequentialProbe, CustomOrderRespected) {
  const std::vector<Value> values{5, 50, 500};
  auto c = make_cluster(values);
  const std::vector<NodeId> order{2, 1, 0};  // descending values
  const auto r = run_sequential_probe_max(c, order);
  EXPECT_EQ(r.reports, 1u);
  EXPECT_EQ(r.winner, 2u);
}

TEST(SequentialProbe, ReportsEqualLeftToRightMaxima) {
  const std::vector<Value> values{4, 7, 2, 9, 1, 8};
  // LTR maxima at positions 0 (4), 1 (7), 3 (9): three reports.
  auto c = make_cluster(values);
  const auto r = run_sequential_probe_max(c, c.all_ids());
  EXPECT_EQ(r.reports, 3u);
}

TEST(SequentialProbe, ExpectedReportsNearHarmonicNumber) {
  // Theorem 4.3 / classical fact: on a uniform random permutation the
  // number of left-to-right maxima has expectation H_n.
  constexpr std::size_t kN = 256;
  constexpr int kTrials = 1'500;
  Rng rng(123);
  OnlineStats reports;
  std::vector<Value> values(kN);
  std::iota(values.begin(), values.end(), 1);
  for (int t = 0; t < kTrials; ++t) {
    rng.shuffle(values.begin(), values.end());
    auto c = make_cluster(values);
    reports.add(static_cast<double>(
        run_sequential_probe_max(c, c.all_ids()).reports));
  }
  const double hn = harmonic(kN);  // ~6.12
  EXPECT_NEAR(reports.mean(), hn, 0.35);
}

TEST(SequentialProbe, MessagesMatchNetworkAccounting) {
  const std::vector<Value> values{1, 3, 2, 4};
  auto c = make_cluster(values);
  const auto r = run_sequential_probe_max(c, c.all_ids());
  EXPECT_EQ(c.stats().upstream(), r.reports);
  EXPECT_EQ(c.stats().broadcast(), r.broadcasts);
}

}  // namespace
}  // namespace topkmon
