// Property-style tests of the protocol layer beyond the basic unit tests:
// loose upper bounds N, arbitrary participant subsets, back-to-back
// executions, option interplay, and value-range extremes.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

#include "protocols/extremum.hpp"
#include "protocols/select_topk.hpp"
#include "util/statistics.hpp"

namespace topkmon {
namespace {

Cluster make_cluster(const std::vector<Value>& values, std::uint64_t seed) {
  // Cluster is neither copyable nor movable; the values constructor
  // builds the fixture in place (guaranteed elision).
  return Cluster(values, seed);
}

// ---------------------------------------------------------------------------
// Loose N: the protocol must stay correct (and Las-Vegas) when N is any
// upper bound, not the exact participant count; the paper's Algorithm 1
// calls MAXIMUMPROTOCOL(n-k) on a handful of violators.
// ---------------------------------------------------------------------------

class LooseUpperBound
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(LooseUpperBound, StillExactAndBounded) {
  const auto [slack_factor, seed] = GetParam();
  const std::vector<Value> values{12, 99, 5, 40, 77, 63, 8, 21};
  auto c = make_cluster(values, seed);
  const std::uint64_t n_upper = values.size() * slack_factor;
  const auto r = run_max_protocol(c, c.all_ids(), n_upper);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.extremum, 99);
  EXPECT_EQ(r.winner, 1u);
  EXPECT_EQ(r.rounds, floor_log2(next_pow2(n_upper)) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Slack, LooseUpperBound,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 16, 1024),
                       ::testing::Range<std::uint64_t>(1, 6)));

// ---------------------------------------------------------------------------
// Arbitrary subsets: correctness is oblivious to which ids participate.
// ---------------------------------------------------------------------------

TEST(ProtocolSubsets, RandomSubsetsAlwaysExact) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 24;
    std::vector<Value> values(n);
    for (auto& v : values) v = rng.uniform_int(-1'000, 1'000);
    auto c = make_cluster(values, 1'000 + static_cast<std::uint64_t>(trial));

    std::vector<NodeId> ids(n);
    std::iota(ids.begin(), ids.end(), 0);
    rng.shuffle(ids.begin(), ids.end());
    const std::size_t take = 1 + rng.uniform_below(n);
    ids.resize(take);

    Value expect = kMinusInf;
    NodeId expect_id = kNoHolder;
    for (const NodeId id : ids) {
      if (values[id] > expect ||
          (values[id] == expect && id < expect_id)) {
        expect = values[id];
        expect_id = id;
      }
    }
    const auto r = run_max_protocol(c, ids, take);
    EXPECT_EQ(r.extremum, expect) << "trial " << trial;
    EXPECT_EQ(r.winner, expect_id) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Back-to-back executions on one cluster must be independent (epoch
// isolation) in both directions and under value changes between runs.
// ---------------------------------------------------------------------------

TEST(ProtocolSequencing, ValueChangesBetweenRunsRespected) {
  const std::vector<Value> values{10, 20, 30, 40};
  auto c = make_cluster(values, 7);
  EXPECT_EQ(run_max_protocol(c, c.all_ids(), 4).extremum, 40);
  c.set_value(3, -5);
  c.set_value(0, 35);
  EXPECT_EQ(run_max_protocol(c, c.all_ids(), 4).extremum, 35);
  EXPECT_EQ(run_min_protocol(c, c.all_ids(), 4).extremum, -5);
}

TEST(ProtocolSequencing, ManyAlternatingRunsStayExact) {
  auto c = make_cluster({3, 1, 4, 1, 5, 9, 2, 6}, 11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(run_max_protocol(c, c.all_ids(), 8).extremum, 9);
    EXPECT_EQ(run_min_protocol(c, c.all_ids(), 8).extremum, 1);
    // Min with a tie at 1: ids 1 and 3 -> smaller id wins.
    EXPECT_EQ(run_min_protocol(c, c.all_ids(), 8).winner, 1u);
  }
}

// ---------------------------------------------------------------------------
// Option interplay.
// ---------------------------------------------------------------------------

TEST(ProtocolOptionsTest, SuppressionPlusAnnounceStillAnnounces) {
  auto c = make_cluster({5, 10, 15}, 13);
  ProtocolOptions opts;
  opts.suppress_idle_broadcasts = true;
  opts.announce_winner = true;
  const auto r = run_max_protocol(c, c.all_ids(), 3, opts);
  EXPECT_EQ(r.announces, 1u);
  EXPECT_EQ(r.extremum, 15);
}

TEST(ProtocolOptionsTest, SelectionWorksWithSuppression) {
  const std::vector<Value> values{50, 10, 40, 20, 30};
  auto c = make_cluster(values, 17);
  ProtocolOptions opts;
  opts.suppress_idle_broadcasts = true;
  const auto sel = select_extreme(c, c.all_ids(), 5, 5, Direction::kMax, opts);
  ASSERT_EQ(sel.winners.size(), 5u);
  EXPECT_EQ(sel.winners[0].id, 0u);
  EXPECT_EQ(sel.winners[4].id, 1u);
}

// ---------------------------------------------------------------------------
// Extreme magnitudes: values near the integer limits must survive the
// beacon/report path unchanged (no midpoints are computed inside the
// protocol itself).
// ---------------------------------------------------------------------------

TEST(ProtocolExtremes, HugeMagnitudesExact) {
  const Value big = std::numeric_limits<Value>::max() / 2;
  const std::vector<Value> values{-big, big, 0, big - 1, -big + 1};
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    auto c = make_cluster(values, seed);
    EXPECT_EQ(run_max_protocol(c, c.all_ids(), 5).extremum, big);
    EXPECT_EQ(run_min_protocol(c, c.all_ids(), 5).extremum, -big);
  }
}

// ---------------------------------------------------------------------------
// Cost structure: reports can never exceed participants + (rounds-ish)
// bound; beacons never exceed rounds.
// ---------------------------------------------------------------------------

TEST(ProtocolCosts, StructuralUpperBounds) {
  Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.uniform_below(100);
    std::vector<Value> values(n);
    for (auto& v : values) v = rng.uniform_int(0, 1'000'000);
    auto c = make_cluster(values, 31 + static_cast<std::uint64_t>(trial));
    const auto r = run_max_protocol(c, c.all_ids(), n);
    EXPECT_LE(r.reports, n);            // each node reports at most once
    EXPECT_LE(r.beacons, r.rounds);     // at most one beacon per round
    EXPECT_GE(r.reports, 1u);           // final round has p = 1
  }
}

// ---------------------------------------------------------------------------
// Distributional regression: the empirical mean report count at n = 128
// stays within a tight window around its theoretical scale (log N + ~2.5,
// well under 2 log N + 1). Guards against accidental changes to the coin
// schedule.
// ---------------------------------------------------------------------------

TEST(ProtocolCosts, MeanReportsStableAtN128) {
  std::vector<Value> values(128);
  std::iota(values.begin(), values.end(), 0);
  OnlineStats reports;
  for (std::uint64_t seed = 0; seed < 600; ++seed) {
    auto c = make_cluster(values, seed);
    reports.add(
        static_cast<double>(run_max_protocol(c, c.all_ids(), 128).reports));
  }
  EXPECT_GT(reports.mean(), 6.0);
  EXPECT_LT(reports.mean(), 15.0);  // 2 log 128 + 1 = 15
}

}  // namespace
}  // namespace topkmon
