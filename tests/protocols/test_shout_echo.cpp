// Tests for the shout-echo selection baseline.
#include "protocols/shout_echo.hpp"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

Cluster make_cluster(const std::vector<Value>& values) {
  // Cluster is neither copyable nor movable; the values constructor
  // builds the fixture in place (guaranteed elision).
  return Cluster(values, 1);
}

TEST(ShoutEcho, EmptyParticipants) {
  auto c = make_cluster({1});
  const auto r = run_shout_echo_extremum(c, {});
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.messages(), 0u);
}

TEST(ShoutEcho, FindsMaximum) {
  const std::vector<Value> values{4, 99, 7, 23};
  auto c = make_cluster(values);
  const auto r = run_shout_echo_extremum(c, c.all_ids());
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.winner, 1u);
  EXPECT_EQ(r.extremum, 99);
}

TEST(ShoutEcho, FindsMinimum) {
  const std::vector<Value> values{4, 99, -7, 23};
  auto c = make_cluster(values);
  const auto r = run_shout_echo_extremum(c, c.all_ids(), Direction::kMin);
  EXPECT_EQ(r.winner, 2u);
  EXPECT_EQ(r.extremum, -7);
}

TEST(ShoutEcho, CostIsParticipantsPlusOne) {
  const std::vector<Value> values{1, 2, 3, 4, 5, 6};
  auto c = make_cluster(values);
  const auto r = run_shout_echo_extremum(c, c.all_ids());
  EXPECT_EQ(r.shouts, 1u);
  EXPECT_EQ(r.echoes, 6u);
  EXPECT_EQ(c.stats().total(), 7u);
}

TEST(ShoutEcho, SubsetOnly) {
  const std::vector<Value> values{1000, 1, 2, 3};
  auto c = make_cluster(values);
  const std::vector<NodeId> who{1, 2, 3};
  const auto r = run_shout_echo_extremum(c, who);
  EXPECT_EQ(r.winner, 3u);
  EXPECT_EQ(r.echoes, 3u);
}

TEST(ShoutEcho, TieBreaksTowardSmallerId) {
  const std::vector<Value> values{5, 5, 5};
  auto c = make_cluster(values);
  const auto r = run_shout_echo_extremum(c, c.all_ids());
  EXPECT_EQ(r.winner, 0u);
}

TEST(ShoutEchoTopk, ReturnsOrderedPrefix) {
  const std::vector<Value> values{30, 10, 50, 20, 40};
  auto c = make_cluster(values);
  const auto r = run_shout_echo_topk(c, c.all_ids(), 3);
  ASSERT_EQ(r.winners.size(), 3u);
  EXPECT_EQ(r.winners[0].id, 2u);
  EXPECT_EQ(r.winners[1].id, 4u);
  EXPECT_EQ(r.winners[2].id, 0u);
}

TEST(ShoutEchoTopk, CostIndependentOfM) {
  const std::vector<Value> values{9, 8, 7, 6, 5};
  auto c1 = make_cluster(values);
  (void)run_shout_echo_topk(c1, c1.all_ids(), 1);
  auto c2 = make_cluster(values);
  (void)run_shout_echo_topk(c2, c2.all_ids(), 5);
  EXPECT_EQ(c1.stats().total(), c2.stats().total());
}

TEST(ShoutEchoTopk, MLargerThanParticipants) {
  const std::vector<Value> values{2, 1};
  auto c = make_cluster(values);
  const auto r = run_shout_echo_topk(c, c.all_ids(), 10);
  EXPECT_EQ(r.winners.size(), 2u);
}

TEST(ShoutEchoTopk, ZeroM) {
  auto c = make_cluster({1, 2});
  const auto r = run_shout_echo_topk(c, c.all_ids(), 0);
  EXPECT_TRUE(r.winners.empty());
  EXPECT_EQ(r.messages(), 0u);
}

}  // namespace
}  // namespace topkmon
