// Tests for Algorithm 2 (MaximumProtocol / MinimumProtocol): Las-Vegas
// correctness, message accounting, the Theorem 4.2 expectation bound, and
// epoch isolation between consecutive runs.
#include "protocols/extremum.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/statistics.hpp"

namespace topkmon {
namespace {

/// Builds a cluster whose node values are `values` (node i gets values[i]).
Cluster make_cluster(const std::vector<Value>& values, std::uint64_t seed = 1) {
  // Cluster is neither copyable nor movable; the values constructor
  // builds the fixture in place (guaranteed elision).
  return Cluster(values, seed);
}

TEST(Beats, MaxDirection) {
  EXPECT_TRUE(beats(Direction::kMax, 5, 0, 3, 1));
  EXPECT_FALSE(beats(Direction::kMax, 3, 0, 5, 1));
  // Ties: smaller id wins.
  EXPECT_TRUE(beats(Direction::kMax, 5, 0, 5, 1));
  EXPECT_FALSE(beats(Direction::kMax, 5, 1, 5, 0));
}

TEST(Beats, MinDirection) {
  EXPECT_TRUE(beats(Direction::kMin, 3, 0, 5, 1));
  EXPECT_FALSE(beats(Direction::kMin, 5, 0, 3, 1));
  EXPECT_TRUE(beats(Direction::kMin, 5, 0, 5, 1));
}

TEST(MaxProtocol, EmptyParticipants) {
  auto c = make_cluster({1, 2, 3});
  const auto r = run_max_protocol(c, {}, 3);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.messages(), 0u);
  EXPECT_EQ(c.stats().total(), 0u);
}

TEST(MaxProtocol, RejectsTooSmallN) {
  auto c = make_cluster({1, 2, 3});
  EXPECT_THROW(run_max_protocol(c, c.all_ids(), 2), std::invalid_argument);
}

TEST(MaxProtocol, SingleParticipant) {
  auto c = make_cluster({10, 20, 30});
  const std::vector<NodeId> who{1};
  const auto r = run_max_protocol(c, who, 1);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.winner, 1u);
  EXPECT_EQ(r.extremum, 20);
  EXPECT_EQ(r.rounds, 1u);   // log 1 + 1
  EXPECT_EQ(r.reports, 1u);  // p = 1 in the only round
}

TEST(MaxProtocol, AlwaysExactOverManySeeds) {
  // Las Vegas: the returned maximum is exact for every random seed.
  const std::vector<Value> values{3, 141, 59, 26, 535, 89, 79, 323};
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    auto c = make_cluster(values, seed);
    const auto r = run_max_protocol(c, c.all_ids(), values.size());
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.extremum, 535) << "seed " << seed;
    EXPECT_EQ(r.winner, 4u) << "seed " << seed;
  }
}

TEST(MinProtocol, AlwaysExactOverManySeeds) {
  const std::vector<Value> values{42, -7, 100, 0, 13, -7 + 1};
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    auto c = make_cluster(values, seed);
    const auto r = run_min_protocol(c, c.all_ids(), values.size());
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.extremum, -7) << "seed " << seed;
    EXPECT_EQ(r.winner, 1u) << "seed " << seed;
  }
}

TEST(MaxProtocol, TieBreaksTowardSmallerId) {
  const std::vector<Value> values{5, 9, 9, 2};
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    auto c = make_cluster(values, seed);
    const auto r = run_max_protocol(c, c.all_ids(), values.size());
    EXPECT_EQ(r.winner, 1u) << "seed " << seed;
  }
}

TEST(MaxProtocol, SubsetParticipantsIgnoreOthers) {
  const std::vector<Value> values{1000, 5, 3, 8};
  auto c = make_cluster(values);
  const std::vector<NodeId> who{1, 2, 3};
  const auto r = run_max_protocol(c, who, 3);
  EXPECT_EQ(r.winner, 3u);
  EXPECT_EQ(r.extremum, 8);
}

TEST(MaxProtocol, RoundsAreLogNPlusOne) {
  for (const std::size_t n : {1u, 2u, 3u, 4u, 7u, 8u, 9u, 64u}) {
    std::vector<Value> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<Value>(i);
    auto c = make_cluster(values);
    const auto r = run_max_protocol(c, c.all_ids(), n);
    EXPECT_EQ(r.rounds, ceil_log2(next_pow2(n)) + 1) << "n=" << n;
  }
}

TEST(MaxProtocol, NegativeValuesWork) {
  const std::vector<Value> values{-50, -3, -77, -1, -20};
  auto c = make_cluster(values, 5);
  const auto r = run_max_protocol(c, c.all_ids(), values.size());
  EXPECT_EQ(r.extremum, -1);
  EXPECT_EQ(r.winner, 3u);
}

TEST(MaxProtocol, MessageAccountingMatchesNetwork) {
  const std::vector<Value> values{8, 1, 6, 3, 5, 7, 4, 9};
  auto c = make_cluster(values, 11);
  const auto r = run_max_protocol(c, c.all_ids(), values.size());
  EXPECT_EQ(c.stats().upstream(), r.reports);
  EXPECT_EQ(c.stats().broadcast(), r.beacons);
  EXPECT_EQ(c.stats().total(), r.messages());
}

TEST(MaxProtocol, AnnounceWinnerAddsOneBroadcast) {
  const std::vector<Value> values{8, 1, 6};
  ProtocolOptions opts;
  opts.announce_winner = true;
  auto c = make_cluster(values, 13);
  const auto r = run_max_protocol(c, c.all_ids(), values.size(), opts);
  EXPECT_EQ(r.announces, 1u);
  const auto log = c.net().broadcast_log();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().kind, MsgKind::kWinnerAnnounce);
  EXPECT_EQ(log.back().a, 8);
}

TEST(MaxProtocol, SuppressIdleBroadcastsSendsFewerBeacons) {
  std::vector<Value> values(256);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<Value>(i);
  }
  std::uint64_t beacons_normal = 0;
  std::uint64_t beacons_suppressed = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    auto c1 = make_cluster(values, seed);
    beacons_normal += run_max_protocol(c1, c1.all_ids(), 256).beacons;
    ProtocolOptions opts;
    opts.suppress_idle_broadcasts = true;
    auto c2 = make_cluster(values, seed);
    const auto r = run_max_protocol(c2, c2.all_ids(), 256, opts);
    beacons_suppressed += r.beacons;
    EXPECT_EQ(r.extremum, 255) << "suppression must not affect correctness";
  }
  EXPECT_LT(beacons_suppressed, beacons_normal);
}

TEST(MaxProtocol, ConsecutiveRunsIsolatedByEpochs) {
  // A stale beacon from run 1 (maximum 1000) must not wrongly deactivate
  // nodes in run 2 over a low-valued subset.
  const std::vector<Value> values{1000, 900, 5, 3};
  auto c = make_cluster(values, 17);
  const std::vector<NodeId> high{0, 1};
  const auto r1 = run_max_protocol(c, high, 2);
  EXPECT_EQ(r1.extremum, 1000);
  // Nodes 2 and 3 did not drain their mailboxes during run 1; the beacons
  // with value 1000 are still queued for them.
  const std::vector<NodeId> low{2, 3};
  const auto r2 = run_max_protocol(c, low, 2);
  ASSERT_TRUE(r2.found);
  EXPECT_EQ(r2.extremum, 5);
  EXPECT_EQ(r2.winner, 2u);
}

TEST(MaxProtocol, ExpectedReportsWithinTheorem42Bound) {
  // Theorem 4.2: E[#reports] <= 2 log N + 1. Check the empirical mean over
  // many trials with a safety margin for sampling noise.
  for (const std::size_t n : {16u, 64u, 256u}) {
    std::vector<Value> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<Value>(i * 10);
    OnlineStats reports;
    for (std::uint64_t seed = 0; seed < 400; ++seed) {
      auto c = make_cluster(values, seed);
      reports.add(static_cast<double>(
          run_max_protocol(c, c.all_ids(), n).reports));
    }
    const double bound =
        2.0 * static_cast<double>(floor_log2(next_pow2(n))) + 1.0;
    EXPECT_LE(reports.mean(), bound * 1.05) << "n=" << n;
    EXPECT_GE(reports.mean(), 1.0);
  }
}

TEST(MaxProtocol, ReportsGrowLogarithmically) {
  // Doubling n four times should grow the mean report count by a bounded
  // additive amount (~2 per doubling), far below linear growth.
  std::vector<double> means;
  for (const std::size_t n : {32u, 512u}) {
    std::vector<Value> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<Value>(i);
    OnlineStats reports;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
      auto c = make_cluster(values, seed);
      reports.add(static_cast<double>(
          run_max_protocol(c, c.all_ids(), n).reports));
    }
    means.push_back(reports.mean());
  }
  // 512/32 = 16x more nodes; log-growth adds ~8 reports, linear would add
  // ~480. Require clearly sublinear growth.
  EXPECT_LT(means[1], means[0] + 12.0);
}

TEST(MaxProtocol, AllNodesInactiveAfterRun) {
  const std::vector<Value> values{4, 8, 15, 16, 23, 42};
  auto c = make_cluster(values, 19);
  (void)run_max_protocol(c, c.all_ids(), values.size());
  for (NodeId i = 0; i < values.size(); ++i) {
    EXPECT_FALSE(c.runtime().active.test(i));
  }
}

TEST(MinProtocol, MirrorsMaxCost) {
  // The min protocol on values is distributionally the max protocol on
  // negated values; sanity-check the cost is in the same ballpark.
  std::vector<Value> values(128);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<Value>(i);
  }
  OnlineStats max_reports;
  OnlineStats min_reports;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    auto c1 = make_cluster(values, seed);
    max_reports.add(static_cast<double>(
        run_max_protocol(c1, c1.all_ids(), 128).reports));
    auto c2 = make_cluster(values, seed);
    min_reports.add(static_cast<double>(
        run_min_protocol(c2, c2.all_ids(), 128).reports));
  }
  EXPECT_NEAR(max_reports.mean(), min_reports.mean(), 2.5);
}

}  // namespace
}  // namespace topkmon
