// Tests for repeated-extremum selection (the FILTERRESET work-horse).
#include "protocols/select_topk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace topkmon {
namespace {

Cluster make_cluster(const std::vector<Value>& values, std::uint64_t seed = 1) {
  // Cluster is neither copyable nor movable; the values constructor
  // builds the fixture in place (guaranteed elision).
  return Cluster(values, seed);
}

TEST(SelectExtreme, EmptyCandidates) {
  auto c = make_cluster({1, 2});
  const auto r = select_extreme(c, {}, 2, 2);
  EXPECT_TRUE(r.winners.empty());
  EXPECT_EQ(r.messages(), 0u);
}

TEST(SelectExtreme, ZeroM) {
  auto c = make_cluster({1, 2});
  const auto r = select_extreme(c, c.all_ids(), 0, 2);
  EXPECT_TRUE(r.winners.empty());
}

TEST(SelectExtreme, FullDescendingOrder) {
  const std::vector<Value> values{30, 10, 50, 20, 40};
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    auto c = make_cluster(values, seed);
    const auto r = select_extreme(c, c.all_ids(), 5, 5);
    ASSERT_EQ(r.winners.size(), 5u);
    const std::vector<NodeId> expect_ids{2, 4, 0, 3, 1};
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(r.winners[i].id, expect_ids[i]) << "seed " << seed;
    }
    EXPECT_EQ(r.winners[0].value, 50);
    EXPECT_EQ(r.winners[4].value, 10);
  }
}

TEST(SelectExtreme, TopMOnly) {
  const std::vector<Value> values{5, 25, 15, 35, 45};
  auto c = make_cluster(values, 3);
  const auto r = select_extreme(c, c.all_ids(), 2, 5);
  ASSERT_EQ(r.winners.size(), 2u);
  EXPECT_EQ(r.winners[0].id, 4u);
  EXPECT_EQ(r.winners[1].id, 3u);
}

TEST(SelectExtreme, MinDirection) {
  const std::vector<Value> values{5, 25, 15, 35, 45};
  auto c = make_cluster(values, 5);
  const auto r = select_extreme(c, c.all_ids(), 2, 5, Direction::kMin);
  ASSERT_EQ(r.winners.size(), 2u);
  EXPECT_EQ(r.winners[0].id, 0u);
  EXPECT_EQ(r.winners[0].value, 5);
  EXPECT_EQ(r.winners[1].id, 2u);
}

TEST(SelectExtreme, MLargerThanCandidates) {
  auto c = make_cluster({7, 3});
  const auto r = select_extreme(c, c.all_ids(), 10, 2);
  ASSERT_EQ(r.winners.size(), 2u);
  EXPECT_EQ(r.winners[0].value, 7);
  EXPECT_EQ(r.winners[1].value, 3);
}

TEST(SelectExtreme, AnnouncesEveryWinner) {
  const std::vector<Value> values{1, 2, 3, 4};
  auto c = make_cluster(values, 7);
  const auto r = select_extreme(c, c.all_ids(), 3, 4);
  EXPECT_EQ(r.announces, 3u);
  std::size_t announce_count = 0;
  for (const auto& m : c.net().broadcast_log()) {
    if (m.kind == MsgKind::kWinnerAnnounce) ++announce_count;
  }
  EXPECT_EQ(announce_count, 3u);
}

TEST(SelectExtreme, MessageTotalsMatchNetwork) {
  const std::vector<Value> values{9, 8, 7, 6, 5, 4, 3, 2};
  auto c = make_cluster(values, 9);
  const auto r = select_extreme(c, c.all_ids(), 4, 8);
  EXPECT_EQ(c.stats().total(), r.messages());
}

TEST(SelectExtreme, CostScalesLinearlyInM) {
  std::vector<Value> values(64);
  for (std::size_t i = 0; i < 64; ++i) values[i] = static_cast<Value>(i);
  double cost1 = 0;
  double cost8 = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    auto c1 = make_cluster(values, seed);
    cost1 += static_cast<double>(
        select_extreme(c1, c1.all_ids(), 1, 64).messages());
    auto c8 = make_cluster(values, seed);
    cost8 += static_cast<double>(
        select_extreme(c8, c8.all_ids(), 8, 64).messages());
  }
  // 8 iterations should cost roughly 8x one iteration (within 2x slack).
  EXPECT_GT(cost8, 4.0 * cost1);
  EXPECT_LT(cost8, 16.0 * cost1);
}

TEST(SelectExtreme, WinnersAreDistinct) {
  const std::vector<Value> values{4, 4, 4, 4};  // ties everywhere
  auto c = make_cluster(values, 11);
  const auto r = select_extreme(c, c.all_ids(), 4, 4);
  ASSERT_EQ(r.winners.size(), 4u);
  std::vector<NodeId> ids;
  for (const auto& w : r.winners) ids.push_back(w.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<NodeId>{0, 1, 2, 3}));
  // Tie-break order: smaller ids first.
  EXPECT_EQ(r.winners[0].id, 0u);
  EXPECT_EQ(r.winners[3].id, 3u);
}

}  // namespace
}  // namespace topkmon
